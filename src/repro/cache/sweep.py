"""Miss-ratio sweeps over (number of sets, associativity) grids.

Figure 3 of the paper plots the miss ratio of exact and lossy traces for a
grid of cache configurations: the number of sets varies from 2k to 512k and
the associativity from 1 to 32, with LRU replacement.  :func:`miss_ratio_sweep`
produces the same grid from a trace using the single-pass stack-distance
simulator (one pass per set count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.cache.stackdist import LruStackSimulator, MissRatioCurve

__all__ = ["MissRatioSurface", "miss_ratio_sweep", "DEFAULT_ASSOCIATIVITIES"]

#: Associativities plotted in Figure 3 of the paper.
DEFAULT_ASSOCIATIVITIES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class MissRatioSurface:
    """Miss ratios over a (num_sets, associativity) grid for one trace.

    Attributes:
        trace_name: Label of the trace the surface was measured from.
        curves: Mapping from set count to the corresponding miss-ratio curve.
    """

    trace_name: str
    curves: Dict[int, MissRatioCurve]

    def miss_ratio(self, num_sets: int, associativity: int) -> float:
        """Miss ratio of the ``num_sets`` x ``associativity`` LRU cache."""
        return self.curves[num_sets].miss_ratio(associativity)

    def series(self, num_sets: int, associativities: Sequence[int] = DEFAULT_ASSOCIATIVITIES) -> List[float]:
        """One Figure-3 curve: miss ratio vs associativity for a set count."""
        return [self.miss_ratio(num_sets, a) for a in associativities]

    @property
    def set_counts(self) -> List[int]:
        """Sorted list of simulated set counts."""
        return sorted(self.curves)

    def max_absolute_error(self, other: "MissRatioSurface") -> float:
        """Largest absolute miss-ratio difference against another surface.

        Used to quantify how far a lossy trace's surface is from the exact
        trace's surface (the paper's visual claim, made numeric).
        """
        worst = 0.0
        for num_sets, curve in self.curves.items():
            other_curve = other.curves[num_sets]
            for associativity in curve.associativities:
                delta = abs(
                    curve.miss_ratio(associativity) - other_curve.miss_ratio(associativity)
                )
                worst = max(worst, delta)
        return worst

    def mean_absolute_error(self, other: "MissRatioSurface") -> float:
        """Mean absolute miss-ratio difference against another surface."""
        total = 0.0
        count = 0
        for num_sets, curve in self.curves.items():
            other_curve = other.curves[num_sets]
            for associativity in curve.associativities:
                total += abs(
                    curve.miss_ratio(associativity) - other_curve.miss_ratio(associativity)
                )
                count += 1
        return total / count if count else 0.0


def _sweep_pass_task(task) -> MissRatioCurve:
    """Picklable single-set-count simulation pass (any executor worker)."""
    blocks, num_sets, max_associativity = task
    simulator = LruStackSimulator(num_sets, max_associativity=max_associativity)
    simulator.access_trace(blocks)
    return simulator.curve()


def miss_ratio_sweep(
    blocks: Iterable[int],
    set_counts: Sequence[int],
    max_associativity: int = 32,
    trace_name: str = "",
    workers: int = 1,
    executor=None,
) -> MissRatioSurface:
    """Simulate a trace once per set count and return the full surface.

    The per-set-count passes are independent, so with ``workers > 1`` (or
    an explicit ``executor``) they run concurrently on the executor engine
    (:func:`repro.core.parallel.map_ordered`) — the same worker layer the
    chunk-compression pipeline and the sweep runner use.  The stack-
    distance simulator is a pure-Python hot loop, which makes this the
    textbook process-executor fan-out: each pass ships the block array
    through shared memory and runs on its own core.  The returned surface
    is identical for every strategy and worker count.

    Args:
        blocks: Block-address trace (any iterable of ints, consumed fully).
        set_counts: Set counts to simulate (each is a separate pass).
        max_associativity: Largest associativity of interest.
        trace_name: Label stored in the returned surface.
        workers: Number of set-count passes simulated concurrently
            (``0``/``None`` = one per CPU, like the rest of the pipeline).
        executor: Strategy name, live executor, or ``None`` for the
            environment/auto default.

    Example:
        >>> surface = miss_ratio_sweep(range(4096), set_counts=(64, 128))
        >>> surface.set_counts
        [64, 128]
        >>> surface.miss_ratio(64, 4)        # a pure streaming trace always misses
        1.0
    """
    from repro.core.parallel import executor_kind, map_ordered, resolve_workers
    from repro.traces.trace import as_address_array

    # Normalise to the kernel's native ``uint64`` layout up front: every
    # per-set-count pass then hands the stack kernel (and, for the process
    # executor, the shared-memory exporter) one contiguous address array.
    materialised = as_address_array(
        blocks if isinstance(blocks, np.ndarray) else list(blocks)
    )
    set_counts = list(set_counts)
    workers = resolve_workers(workers)
    shared_blocks = materialised
    segments: list = []
    if len(set_counts) > 1 and executor_kind(executor) == "process":
        # Every pass reads the same immutable trace: export it into ONE
        # shared-memory segment up front and ship the handle per task,
        # instead of letting each submission copy the whole array into its
        # own segment.  Workers resolve the handle transparently (the
        # process trampoline imports packed arguments without unlinking);
        # the single segment is reclaimed here once the map returns.
        from repro.core import shmem

        shared_blocks = shmem.export_value(materialised, segments)
    try:
        tasks = [(shared_blocks, num_sets, max_associativity) for num_sets in set_counts]
        passes = map_ordered(_sweep_pass_task, tasks, workers=workers, executor=executor)
    finally:
        if segments:
            from repro.core import shmem

            shmem.release_segments(segments)
    curves: Dict[int, MissRatioCurve] = dict(zip(set_counts, passes))
    return MissRatioSurface(trace_name=trace_name, curves=curves)
