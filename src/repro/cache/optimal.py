"""Optimal (Belady/MIN) replacement simulation.

The Cheetah simulator the paper uses for Figure 3 (Sugumar & Abraham,
SIGMETRICS 1993) is best known for efficient simulation of caches *under
optimal replacement*; the paper itself only exercises its LRU mode, but the
OPT miss ratio is the natural lower bound to put next to the LRU curves, so
this reproduction includes it as an optional comparator (used by the
extended analysis in ``examples/full_evaluation.py`` and by tests that bound
the LRU curves).

The implementation is the classic two-pass MIN algorithm applied per cache
set: a first pass records, for every reference, the position of the next
reference to the same block; the simulation pass then always evicts the
resident block whose next use lies furthest in the future.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.cache.cache import CacheStats
from repro.errors import ConfigurationError

__all__ = ["OptimalCacheSimulator", "optimal_miss_ratio"]

_NEVER = float("inf")


@dataclass(frozen=True)
class _SetTrace:
    """Per-set reference list with next-use indices."""

    blocks: List[int]
    next_use: List[float]


class OptimalCacheSimulator:
    """Set-associative cache with Belady's optimal (MIN) replacement.

    Unlike the online simulators in :mod:`repro.cache.cache`, OPT needs the
    whole trace up front (it looks into the future), so the entry point is
    :meth:`simulate` over a complete block-address sequence.

    Args:
        num_sets: Number of cache sets (power of two).
        associativity: Ways per set.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise ConfigurationError(f"num_sets must be a power of two, got {num_sets}")
        if associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        self.num_sets = num_sets
        self.associativity = associativity

    # -- preprocessing -------------------------------------------------------------
    def _split_by_set(self, blocks: Sequence[int]) -> Dict[int, _SetTrace]:
        per_set_blocks: Dict[int, List[int]] = {}
        mask = self.num_sets - 1
        for block in blocks:
            block = int(block)
            per_set_blocks.setdefault(block & mask, []).append(block)
        traces: Dict[int, _SetTrace] = {}
        for set_index, set_blocks in per_set_blocks.items():
            next_use: List[float] = [_NEVER] * len(set_blocks)
            last_seen: Dict[int, int] = {}
            for position in range(len(set_blocks) - 1, -1, -1):
                block = set_blocks[position]
                next_use[position] = last_seen.get(block, _NEVER)
                last_seen[block] = position
            traces[set_index] = _SetTrace(blocks=set_blocks, next_use=next_use)
        return traces

    # -- simulation -----------------------------------------------------------------
    def simulate(self, blocks: Iterable[int]) -> CacheStats:
        """Simulate the whole trace and return hit/miss statistics."""
        materialised = [int(block) for block in blocks]
        stats = CacheStats()
        for set_trace in self._split_by_set(materialised).values():
            stats = stats.merge(self._simulate_one_set(set_trace))
        return stats

    def _simulate_one_set(self, set_trace: _SetTrace) -> CacheStats:
        stats = CacheStats()
        # resident maps block -> next use position; the heap holds
        # (-next_use, block) entries, lazily invalidated on pop.
        resident: Dict[int, float] = {}
        heap: List = []
        for position, block in enumerate(set_trace.blocks):
            stats.accesses += 1
            next_use = set_trace.next_use[position]
            if block in resident:
                stats.hits += 1
                resident[block] = next_use
                heapq.heappush(heap, (-next_use if next_use != _NEVER else float("-inf"), block))
                continue
            stats.misses += 1
            if len(resident) >= self.associativity:
                # Evict the resident block whose next use is furthest away.
                while heap:
                    key, candidate = heapq.heappop(heap)
                    candidate_next = -key if key != float("-inf") else _NEVER
                    if candidate in resident and resident[candidate] == candidate_next:
                        del resident[candidate]
                        stats.evictions += 1
                        break
            resident[block] = next_use
            heapq.heappush(heap, (-next_use if next_use != _NEVER else float("-inf"), block))
        return stats


def optimal_miss_ratio(blocks, num_sets: int, associativity: int) -> float:
    """Miss ratio of the trace under optimal replacement."""
    blocks = np.asarray(blocks).tolist() if isinstance(blocks, np.ndarray) else list(blocks)
    return OptimalCacheSimulator(num_sets, associativity).simulate(blocks).miss_ratio
