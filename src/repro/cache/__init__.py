"""Cache substrate: set-associative caches and multi-config LRU simulation."""

from repro.cache.cache import CacheConfig, CacheStats, SetAssociativeCache, access_batches
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.optimal import OptimalCacheSimulator, optimal_miss_ratio
from repro.cache.stackdist import LruStackSimulator, MissRatioCurve, simulate_miss_curve
from repro.cache.sweep import DEFAULT_ASSOCIATIVITIES, MissRatioSurface, miss_ratio_sweep

__all__ = [
    "CacheConfig",
    "CacheStats",
    "SetAssociativeCache",
    "access_batches",
    "CacheHierarchy",
    "LruStackSimulator",
    "MissRatioCurve",
    "simulate_miss_curve",
    "MissRatioSurface",
    "miss_ratio_sweep",
    "DEFAULT_ASSOCIATIVITIES",
    "OptimalCacheSimulator",
    "optimal_miss_ratio",
]
