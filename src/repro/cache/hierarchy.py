"""Multi-level cache hierarchy used as a trace filter.

The paper filters the reference stream with "one or more cache levels"
(Section 2).  :class:`CacheHierarchy` chains :class:`SetAssociativeCache`
levels: a reference is presented to level 1; on a miss it propagates to
level 2, and so on.  The *filtered trace* is the stream of block addresses
that miss in the last level.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.cache.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.errors import ConfigurationError

__all__ = ["CacheHierarchy"]


class CacheHierarchy:
    """An inclusive-lookup chain of cache levels acting as a miss filter.

    The model is deliberately simple (no write-back traffic, no inclusion
    enforcement): each level is an independent tag store, and a reference is
    inserted in every level it misses in.  That is exactly the "filter"
    semantics of the paper, which cares only about which addresses escape
    the cache levels, not about coherence traffic.
    """

    def __init__(self, configs: Sequence[CacheConfig]) -> None:
        if not configs:
            raise ConfigurationError("a cache hierarchy needs at least one level")
        block_sizes = {config.block_bytes for config in configs}
        if len(block_sizes) != 1:
            raise ConfigurationError("all hierarchy levels must share the block size")
        self.levels: List[SetAssociativeCache] = [SetAssociativeCache(c) for c in configs]
        self.block_bytes = configs[0].block_bytes
        self._block_shift = self.block_bytes.bit_length() - 1

    def __len__(self) -> int:
        return len(self.levels)

    def access(self, byte_address: int) -> bool:
        """Access a byte address; returns True when the first level hits."""
        return self.access_block(int(byte_address) >> self._block_shift)

    def access_block(self, block: int) -> bool:
        """Access a block address through the hierarchy.

        Returns ``True`` if any level hits; the miss is only counted as a
        *filtered miss* when every level misses.
        """
        hit = False
        for level in self.levels:
            if level.access_block(block):
                hit = True
                break
        return hit

    def miss_stream(self, blocks: Iterable[int]) -> np.ndarray:
        """Return the block addresses that miss in every level, in order."""
        misses = []
        for block in blocks:
            if not self.access_block(int(block)):
                misses.append(int(block))
        return np.array(misses, dtype=np.uint64)

    def stats(self) -> List[CacheStats]:
        """Return the per-level statistics, from first level to last."""
        return [level.stats for level in self.levels]

    def reset(self) -> None:
        """Reset every level (contents and statistics)."""
        for level in self.levels:
            level.reset()
