"""Multi-level cache hierarchy used as a trace filter.

The paper filters the reference stream with "one or more cache levels"
(Section 2).  :class:`CacheHierarchy` chains :class:`SetAssociativeCache`
levels: a reference is presented to level 1; on a miss it propagates to
level 2, and so on.  The *filtered trace* is the stream of block addresses
that miss in the last level.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.cache.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.errors import ConfigurationError

__all__ = ["CacheHierarchy", "miss_streams"]


def _slices_of(blocks: Iterable[int], size: Optional[int] = None) -> Iterator[np.ndarray]:
    """Regroup a lazy block iterable into bounded uint64 slices."""
    from itertools import islice

    from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, as_address_array

    size = DEFAULT_CHUNK_ADDRESSES if size is None else size
    iterator = iter(blocks)
    while True:
        piece = list(islice(iterator, size))
        if not piece:
            return
        yield as_address_array(piece)


class CacheHierarchy:
    """An inclusive-lookup chain of cache levels acting as a miss filter.

    The model is deliberately simple (no write-back traffic, no inclusion
    enforcement): each level is an independent tag store, and a reference is
    inserted in every level it misses in.  That is exactly the "filter"
    semantics of the paper, which cares only about which addresses escape
    the cache levels, not about coherence traffic.
    """

    def __init__(self, configs: Sequence[CacheConfig]) -> None:
        if not configs:
            raise ConfigurationError("a cache hierarchy needs at least one level")
        block_sizes = {config.block_bytes for config in configs}
        if len(block_sizes) != 1:
            raise ConfigurationError("all hierarchy levels must share the block size")
        self.levels: List[SetAssociativeCache] = [SetAssociativeCache(c) for c in configs]
        self.block_bytes = configs[0].block_bytes
        self._block_shift = self.block_bytes.bit_length() - 1

    def __len__(self) -> int:
        return len(self.levels)

    def access(self, byte_address: int) -> bool:
        """Access a byte address; returns True when the first level hits."""
        return self.access_block(int(byte_address) >> self._block_shift)

    def access_block(self, block: int) -> bool:
        """Access a block address through the hierarchy.

        Returns ``True`` if any level hits; the miss is only counted as a
        *filtered miss* when every level misses.
        """
        hit = False
        for level in self.levels:
            if level.access_block(block):
                hit = True
                break
        return hit

    def access_batch(self, blocks) -> np.ndarray:
        """Access many block addresses at once; returns the boolean hit mask.

        Semantically identical to calling :meth:`access_block` on every
        element in order: level 1 sees the whole batch, and each further
        level sees exactly the subsequence that missed every level before
        it (the serial loop's early-exit behaviour), simulated with the
        vectorised per-level
        :meth:`~repro.cache.cache.SetAssociativeCache.access_batch`.
        """
        from repro.traces.trace import as_address_array

        array = as_address_array(blocks)
        count = int(array.size)
        hits = np.zeros(count, dtype=bool)
        pending = array
        pending_positions = np.arange(count, dtype=np.int64)
        for level in self.levels:
            if pending.size == 0:
                break
            level_hits = level.access_batch(pending)
            hits[pending_positions[level_hits]] = True
            pending = pending[~level_hits]
            pending_positions = pending_positions[~level_hits]
        return hits

    def miss_stream(self, blocks: Iterable[int]) -> np.ndarray:
        """Return the block addresses that miss in every level, in order.

        Arrays and sequences take the vectorised :meth:`access_batch` path
        directly; lazy iterables (generators) are consumed in bounded
        slices so only the misses are ever held, preserving the streaming
        memory profile of the serial per-access loop.
        """
        from repro.traces.trace import as_address_array

        if isinstance(blocks, np.ndarray) or hasattr(blocks, "__len__"):
            array = as_address_array(blocks)
            return array[~self.access_batch(array)]
        miss_chunks = list(self.miss_stream_chunks(_slices_of(blocks)))
        if not miss_chunks:
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(miss_chunks)

    def miss_stream_chunks(self, chunks) -> Iterator[np.ndarray]:
        """Streaming :meth:`miss_stream`: miss chunks from address chunks.

        Cache state carries across chunks, so for any chunking of a block
        stream the concatenated output is byte-identical to
        :meth:`miss_stream` on the whole stream, with peak memory bounded
        by the chunk size.  The chunk loop is inherently sequential (each
        chunk sees the cache state the previous one left behind); the
        parallel axis of batch filtering is *across independent traces* —
        see :func:`miss_streams`.
        """
        from repro.core.stream import map_chunks

        return map_chunks(chunks, self.miss_stream)

    def stats(self) -> List[CacheStats]:
        """Return the per-level statistics, from first level to last."""
        return [level.stats for level in self.levels]

    def reset(self) -> None:
        """Reset every level (contents and statistics)."""
        for level in self.levels:
            level.reset()


def _miss_stream_task(task) -> np.ndarray:
    """Picklable per-trace hierarchy-filter cell (fresh levels per trace)."""
    configs, blocks = task
    return CacheHierarchy(configs).miss_stream(blocks)


def miss_streams(
    traces,
    configs: Sequence[CacheConfig],
    workers: int = 1,
    executor=None,
) -> List[np.ndarray]:
    """Filter several independent block traces through the same geometry.

    Each trace gets its own fresh hierarchy (independent workloads must not
    share cache state), so the cells fan out on the executor engine; with
    the process executor the block arrays travel through shared memory and
    the per-access simulation uses real cores.  Results are in input order
    and identical to ``[CacheHierarchy(configs).miss_stream(t) for t in
    traces]`` for every strategy.

    Args:
        traces: Iterable of block-address arrays (one per workload).
        configs: The hierarchy geometry applied to every trace.
        workers: Concurrent traces (``0``/``None`` = one per CPU).
        executor: Strategy name, live executor, or ``None`` for the
            environment/auto default.
    """
    from repro.core.parallel import map_ordered
    from repro.traces.trace import as_address_array

    configs = tuple(configs)
    tasks = [(configs, as_address_array(trace)) for trace in traces]
    return map_ordered(_miss_stream_task, tasks, workers=workers, executor=executor)
