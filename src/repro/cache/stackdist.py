"""Single-pass multi-associativity LRU simulation (Mattson stack distances).

The paper evaluates lossy-trace fidelity by simulating "a set-associative
cache, varying the number of cache sets and the associativity" with the
Cheetah simulator (Figure 3).  Cheetah's key trick, reproduced here, is
Mattson's inclusion property: for LRU replacement, a reference that hits in
an A-way set-associative cache also hits in every cache with the same set
count and larger associativity.  Therefore one pass that records, for every
reference, the per-set LRU *stack distance* yields the miss ratio of **all**
associativities at once.

:class:`LruStackSimulator` is exact for distances up to a configurable
``max_associativity`` (32 in the paper's sweep) and simply reports
"deeper than the maximum" beyond that, which is all Figure 3 needs.
:meth:`LruStackSimulator.access_trace` runs whole arrays through the
set-parallel stack kernel (:mod:`repro.core.kernels`) — one pass records
every reference's capped stack distance, so the entire
miss-ratio-vs-associativity curve costs a single array sweep instead of
one Python ``list.index`` per reference; :meth:`~LruStackSimulator.access_block`
remains the per-reference serial oracle and both produce identical
counters and stack state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["MissRatioCurve", "LruStackSimulator", "simulate_miss_curve"]

#: Traces shorter than this are simulated by the serial per-block loop;
#: below a few hundred references the kernel's sort/pack setup dominates.
KERNEL_MIN_TRACE = 192


@dataclass(frozen=True)
class MissRatioCurve:
    """Miss ratio as a function of associativity for a fixed set count.

    Attributes:
        num_sets: Number of cache sets the curve was measured for.
        accesses: Total number of references simulated.
        miss_counts: ``miss_counts[a]`` is the number of misses in an
            ``a``-way cache (keys are 1..max_associativity).
    """

    num_sets: int
    accesses: int
    miss_counts: Dict[int, int]

    def miss_ratio(self, associativity: int) -> float:
        """Miss ratio of the ``associativity``-way cache with ``num_sets`` sets."""
        if associativity not in self.miss_counts:
            raise ConfigurationError(
                f"associativity {associativity} was not simulated "
                f"(available: 1..{max(self.miss_counts)})"
            )
        if self.accesses == 0:
            return 0.0
        return self.miss_counts[associativity] / self.accesses

    def as_series(self) -> List[float]:
        """Return miss ratios ordered by associativity (1, 2, ..., max)."""
        return [self.miss_ratio(a) for a in sorted(self.miss_counts)]

    @property
    def associativities(self) -> List[int]:
        """Sorted list of simulated associativities."""
        return sorted(self.miss_counts)


class LruStackSimulator:
    """One-pass LRU simulator producing a full miss-ratio-vs-associativity curve.

    Args:
        num_sets: Number of cache sets (power of two).
        max_associativity: Largest associativity to report (the per-set LRU
            stack is truncated to this depth).
    """

    def __init__(self, num_sets: int, max_associativity: int = 32) -> None:
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise ConfigurationError(f"num_sets must be a power of two, got {num_sets}")
        if max_associativity < 1:
            raise ConfigurationError("max_associativity must be >= 1")
        self.num_sets = num_sets
        self.max_associativity = max_associativity
        self._set_mask = num_sets - 1
        # Per-set MRU-first list of block addresses, truncated to max depth.
        self._stacks: List[List[int]] = [[] for _ in range(num_sets)]
        self._accesses = 0
        # distance_hits[d] counts references found at stack depth d (1-based);
        # references not found within max_associativity are "deep misses".
        self._distance_hits = np.zeros(max_associativity + 1, dtype=np.int64)
        self._deep_misses = 0

    def access_block(self, block: int) -> int:
        """Record one reference; returns its LRU stack depth (0 = not found).

        Depth ``d >= 1`` means the block was the ``d``-th most recently used
        block of its set, so the reference hits in every cache of
        associativity >= ``d``.  Depth 0 means the block was not within the
        tracked depth (miss at every simulated associativity).
        """
        block = int(block)
        stack = self._stacks[block & self._set_mask]
        self._accesses += 1
        try:
            position = stack.index(block)
        except ValueError:
            position = -1
        if position >= 0:
            depth = position + 1
            del stack[position]
            stack.insert(0, block)
            self._distance_hits[depth] += 1
            return depth
        stack.insert(0, block)
        if len(stack) > self.max_associativity:
            stack.pop()
        self._deep_misses += 1
        return 0

    def access_trace(self, blocks: Iterable[int]) -> None:
        """Feed every block address of ``blocks`` through the simulator.

        Arrays and sequences run on the set-parallel stack kernel (exact
        capped distances for the whole batch in one array sweep); lazy
        iterables are consumed in bounded slices so peak memory stays
        chunk-sized.  Counters and per-set stacks end up bit-identical to
        calling :meth:`access_block` on every element in order.
        """
        if isinstance(blocks, np.ndarray) or hasattr(blocks, "__len__"):
            self._access_array(blocks)
            return
        from itertools import islice

        from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES

        iterator = iter(blocks)
        while True:
            piece = list(islice(iterator, DEFAULT_CHUNK_ADDRESSES))
            if not piece:
                return
            self._access_array(piece)

    def _access_array(self, blocks) -> None:
        """Kernel-simulate one materialised batch (state carries across)."""
        from repro.traces.trace import as_address_array

        array = as_address_array(blocks)
        count = int(array.size)
        if count < KERNEL_MIN_TRACE:
            for block in array.tolist():
                self.access_block(block)
            return
        from repro.core.kernels import simulate_batch
        from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES

        from repro.cache.cache import KERNEL_SEED_SCAN_SETS

        for start in range(0, count, DEFAULT_CHUNK_ADDRESSES):
            piece = array[start : start + DEFAULT_CHUNK_ADDRESSES]
            set_index = (piece & np.uint64(self._set_mask)).astype(np.int32)
            if self.num_sets <= KERNEL_SEED_SCAN_SETS:
                touched = range(self.num_sets)
            else:
                touched = np.unique(set_index).tolist()
            initial = {}
            for index in touched:
                stack = self._stacks[index]
                if stack:
                    initial[index] = stack
            result = simulate_batch(
                piece,
                set_index,
                self._set_mask,
                self.max_associativity,
                "lru",
                initial,
                want_depths=True,
                track_stamps=False,
            )
            counts = np.bincount(result.depths, minlength=self.max_associativity + 1)
            self._deep_misses += int(counts[0])
            self._distance_hits[1:] += counts[1 : self.max_associativity + 1]
            self._accesses += int(piece.size)
            for index, stack in result.final_stacks.items():
                self._stacks[index] = [block for block, _ in stack]

    def curve(self) -> MissRatioCurve:
        """Return the miss-ratio curve accumulated so far."""
        miss_counts: Dict[int, int] = {}
        # A reference with depth d hits for associativity >= d, so the miss
        # count at associativity A is (#references with depth > A) + deep.
        hits_cumulative = np.cumsum(self._distance_hits)
        total_tracked = int(self._distance_hits.sum())
        for associativity in range(1, self.max_associativity + 1):
            hits = int(hits_cumulative[associativity])
            misses = (total_tracked - hits) + self._deep_misses
            miss_counts[associativity] = misses
        return MissRatioCurve(
            num_sets=self.num_sets, accesses=self._accesses, miss_counts=miss_counts
        )


def simulate_miss_curve(
    blocks: Sequence[int], num_sets: int, max_associativity: int = 32
) -> MissRatioCurve:
    """Convenience wrapper: simulate ``blocks`` and return the miss curve."""
    simulator = LruStackSimulator(num_sets, max_associativity=max_associativity)
    simulator.access_trace(blocks)
    return simulator.curve()
