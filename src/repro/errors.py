"""Exception hierarchy shared by every subsystem of the reproduction.

All errors raised deliberately by the library derive from :class:`ReproError`
so callers can catch library failures without also catching programming
errors (``TypeError``, ``KeyError`` ...) that indicate bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class TraceFormatError(ReproError):
    """A raw or compressed trace is malformed or truncated."""


class ContainerError(ReproError):
    """An on-disk ATC container (chunk directory) is invalid or corrupt."""


def _rebuild_integrity_error(message, path, chunk_id, offset):
    """Unpickle helper: restore an :class:`IntegrityError` with its fields."""
    return IntegrityError(message, path=path, chunk_id=chunk_id, offset=offset)


class IntegrityError(ContainerError):
    """Stored bytes failed an integrity check (digest mismatch, truncation).

    Raised by every decode path — :meth:`AtcDecoder.iter_chunks`, the chunk
    LRU cache, parallel prefetch, the HTTP service — when on-disk bytes do
    not match the digests recorded in a format-v2 container, or when a
    chunk/INFO stream fails to decompress at all.  Carries the damage
    location so callers (``repro fsck``, the quarantine layer) can localise
    it without re-parsing the message:

    Attributes:
        path: Path of the damaged file, when known.
        chunk_id: Zero-based chunk id of the damaged chunk, or ``None`` for
            INFO/footer damage.
        offset: Byte offset of the damage within the file, when it can be
            determined (e.g. the observed length of a truncated stream).
    """

    def __init__(self, message, path=None, chunk_id=None, offset=None):
        super().__init__(message)
        self.path = str(path) if path is not None else None
        self.chunk_id = chunk_id
        self.offset = offset

    def __reduce__(self):
        # Keep path/chunk_id/offset across pickling: process-executor
        # workers ship exceptions back through a pipe.
        return (
            _rebuild_integrity_error,
            (str(self), self.path, self.chunk_id, self.offset),
        )


class CodecError(ReproError):
    """A compressor or decompressor was used incorrectly or hit bad data."""


class ConfigurationError(ReproError):
    """A simulator, workload or codec received an invalid configuration."""


class BenchmarkError(ReproError):
    """A benchmark report is malformed or a comparison was set up wrongly.

    Raised by :mod:`repro.bench` when a report fails schema validation or
    when two reports cannot be compared (e.g. they were run at different
    scales).  A *regression* is not an error — the comparator reports it as
    a failed check so callers can render every verdict before exiting.
    """


class ParallelExecutionError(ReproError):
    """A parallel worker died unexpectedly (crash, kill or broken pipe).

    Raised by the executor engine (:mod:`repro.core.executors`) in place of
    the raw pool-internal errors, after the pool has been shut down and its
    children reaped, so callers see one clear failure instead of a cascade.
    """


class ServiceError(ReproError):
    """The HTTP service (:mod:`repro.service`) was misconfigured or misused.

    Covers server-side configuration problems (invalid limits, an unusable
    cache directory) and service-internal protocol violations.  Client-side
    problems — malformed requests, bad container uploads — are mapped to
    4xx responses by the request dispatcher instead of raising."""
