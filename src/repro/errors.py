"""Exception hierarchy shared by every subsystem of the reproduction.

All errors raised deliberately by the library derive from :class:`ReproError`
so callers can catch library failures without also catching programming
errors (``TypeError``, ``KeyError`` ...) that indicate bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class TraceFormatError(ReproError):
    """A raw or compressed trace is malformed or truncated."""


class ContainerError(ReproError):
    """An on-disk ATC container (chunk directory) is invalid or corrupt."""


class CodecError(ReproError):
    """A compressor or decompressor was used incorrectly or hit bad data."""


class ConfigurationError(ReproError):
    """A simulator, workload or codec received an invalid configuration."""
