"""Exception hierarchy shared by every subsystem of the reproduction.

All errors raised deliberately by the library derive from :class:`ReproError`
so callers can catch library failures without also catching programming
errors (``TypeError``, ``KeyError`` ...) that indicate bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class TraceFormatError(ReproError):
    """A raw or compressed trace is malformed or truncated."""


class ContainerError(ReproError):
    """An on-disk ATC container (chunk directory) is invalid or corrupt."""


class CodecError(ReproError):
    """A compressor or decompressor was used incorrectly or hit bad data."""


class ConfigurationError(ReproError):
    """A simulator, workload or codec received an invalid configuration."""


class BenchmarkError(ReproError):
    """A benchmark report is malformed or a comparison was set up wrongly.

    Raised by :mod:`repro.bench` when a report fails schema validation or
    when two reports cannot be compared (e.g. they were run at different
    scales).  A *regression* is not an error — the comparator reports it as
    a failed check so callers can render every verdict before exiting.
    """


class ParallelExecutionError(ReproError):
    """A parallel worker died unexpectedly (crash, kill or broken pipe).

    Raised by the executor engine (:mod:`repro.core.executors`) in place of
    the raw pool-internal errors, after the pool has been shut down and its
    children reaped, so callers see one clear failure instead of a cascade.
    """


class ServiceError(ReproError):
    """The HTTP service (:mod:`repro.service`) was misconfigured or misused.

    Covers server-side configuration problems (invalid limits, an unusable
    cache directory) and service-internal protocol violations.  Client-side
    problems — malformed requests, bad container uploads — are mapped to
    4xx responses by the request dispatcher instead of raising."""
