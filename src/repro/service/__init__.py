"""ATC-as-a-service: the HTTP deployment mode of the reproduction.

The package splits along responsibility lines so each piece is unit
testable without a socket:

* :mod:`repro.service.http` — bounded HTTP/1.1 framing (heads, chunked
  bodies, streaming responses), nothing ATC-specific.
* :mod:`repro.service.limits` — the connection gate, cooperative
  cancellation tokens and the drain controller.
* :mod:`repro.service.metrics` — thread-safe counters behind
  ``GET /v1/metrics``.
* :mod:`repro.service.cache` — the deterministic container wire format
  and the content-addressed dedup cache.
* :mod:`repro.service.app` — routing, the endpoint handlers and the
  server lifecycle (:class:`AtcService`, :class:`BackgroundServer`).

Start a server from the CLI with ``repro serve``; from code::

    from repro.service import BackgroundServer, ServiceConfig

    with BackgroundServer(ServiceConfig(port=0)) as server:
        ...  # POST raw traces to f"{server.address}/v1/compress"
"""

from repro.service.app import AtcService, BackgroundServer, ServiceConfig
from repro.service.cache import ContainerCache, pack_container, unpack_container
from repro.service.limits import CancelToken, ConnectionGate, DrainController, JobCancelled
from repro.service.metrics import METRICS_SCHEMA, ServiceMetrics

__all__ = [
    "AtcService",
    "BackgroundServer",
    "ServiceConfig",
    "ContainerCache",
    "pack_container",
    "unpack_container",
    "CancelToken",
    "ConnectionGate",
    "DrainController",
    "JobCancelled",
    "METRICS_SCHEMA",
    "ServiceMetrics",
]
