"""A minimal, bounded HTTP/1.1 layer for the ATC service (stdlib asyncio only).

The service speaks just enough HTTP to move trace and container payloads:
request heads with capped line/header sizes, bodies framed by either
``Content-Length`` or ``Transfer-Encoding: chunked``, and responses whose
bodies may be bytes, a synchronous iterator or an async iterator (the
latter two are sent with chunked framing, so a decoded trace streams out
without ever being held in memory whole).  Every connection serves one
request and closes — the load profile is few large transfers, not many
small ones, so keep-alive complexity buys nothing.

Parsing failures raise :class:`HttpError` with the right status code; the
connection handler turns that into a plain-text error response.  Nothing
here knows about ATC — framing only.

Example:
    >>> error = HttpError(413, "request body exceeds the configured limit")
    >>> error.status, str(error)
    (413, 'request body exceeds the configured limit')
    >>> reason_phrase(429)
    'Too Many Requests'
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Optional
from urllib.parse import parse_qs, urlsplit

from repro.errors import ServiceError

__all__ = [
    "MAX_REQUEST_LINE_BYTES",
    "MAX_HEADER_BYTES",
    "HttpError",
    "Request",
    "Response",
    "reason_phrase",
    "read_request",
    "write_response",
]

#: Cap on the request line (``POST /v1/compress HTTP/1.1``).
MAX_REQUEST_LINE_BYTES = 8192

#: Cap on the combined size of all header lines.
MAX_HEADER_BYTES = 65536

#: Read granularity for request and response bodies.
IO_CHUNK_BYTES = 65536

_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def reason_phrase(status: int) -> str:
    """Human-readable phrase for a status code (empty when unknown)."""
    return _REASONS.get(int(status), "")


class HttpError(ServiceError):
    """A protocol-level failure carrying the HTTP status to answer with.

    Args:
        status: Status code for the error response.
        message: Plain-text body; also the exception message.
        headers: Extra response headers (e.g. ``Retry-After`` on 429).
    """

    def __init__(self, status: int, message: str, headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed request head plus a streaming view of its body.

    The body is consumed exactly once through :meth:`iter_body`; handlers
    that need it on disk spool it chunk by chunk, never materialising more
    than :data:`IO_CHUNK_BYTES` at a time.
    """

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    _reader: asyncio.StreamReader = field(repr=False)
    _max_body_bytes: int = field(repr=False)

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive single-header lookup."""
        return self.headers.get(name.lower(), default)

    async def iter_body(self) -> AsyncIterator[bytes]:
        """Yield the request body in bounded chunks.

        Framing is taken from the head: ``Transfer-Encoding: chunked`` wins
        over ``Content-Length``; a body-less request yields nothing.  The
        cumulative size is checked against the configured cap and overruns
        raise :class:`HttpError` 413 mid-stream.
        """
        encoding = self.header("transfer-encoding").lower()
        if "chunked" in encoding:
            async for piece in self._iter_chunked():
                yield piece
            return
        length_text = self.header("content-length")
        if not length_text:
            return
        try:
            remaining = int(length_text)
        except ValueError:
            raise HttpError(400, f"invalid Content-Length: {length_text!r}") from None
        if remaining < 0:
            raise HttpError(400, f"invalid Content-Length: {length_text!r}")
        if remaining > self._max_body_bytes:
            raise HttpError(413, f"request body of {remaining} bytes exceeds the limit")
        while remaining:
            piece = await self._reader.read(min(IO_CHUNK_BYTES, remaining))
            if not piece:
                raise HttpError(400, "request body ended before Content-Length was satisfied")
            remaining -= len(piece)
            yield piece

    async def _iter_chunked(self) -> AsyncIterator[bytes]:
        total = 0
        while True:
            size_line = await self._read_line("chunk size")
            try:
                size = int(size_line.split(b";", 1)[0].strip(), 16)
            except ValueError:
                raise HttpError(400, f"invalid chunk size line: {size_line!r}") from None
            if size == 0:
                # Trailer section: skip until the blank line.
                while await self._read_line("chunk trailer"):
                    pass
                return
            total += size
            if total > self._max_body_bytes:
                raise HttpError(413, f"chunked request body exceeds {self._max_body_bytes} bytes")
            remaining = size
            while remaining:
                piece = await self._reader.read(min(IO_CHUNK_BYTES, remaining))
                if not piece:
                    raise HttpError(400, "request body ended inside a chunk")
                remaining -= len(piece)
                yield piece
            terminator = await self._reader.readexactly(2)
            if terminator != b"\r\n":
                raise HttpError(400, "chunk data not terminated by CRLF")

    async def _read_line(self, what: str) -> bytes:
        try:
            line = await self._reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, f"request body ended while reading the {what}") from None
        return line[:-2]


@dataclass
class Response:
    """A response to serialise: status, headers, and one of three body kinds.

    ``body`` may be ``bytes`` (sent with ``Content-Length``), a synchronous
    iterator of ``bytes``, or an async iterator of ``bytes`` (both sent
    with chunked framing).
    """

    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)
    body: object = b""

    @classmethod
    def text(cls, status: int, message: str, headers: Optional[Dict[str, str]] = None) -> "Response":
        """A plain-text response (used for every error path)."""
        payload = (message.rstrip("\n") + "\n").encode("utf-8")
        merged = {"Content-Type": "text/plain; charset=utf-8"}
        merged.update(headers or {})
        return cls(status=status, headers=merged, body=payload)


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Request]:
    """Parse one request head; ``None`` when the client closed silently.

    Raises:
        HttpError: On any malformed or oversized head (400/413/501).
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise HttpError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request line too long") from None
    if len(line) > MAX_REQUEST_LINE_BYTES:
        raise HttpError(413, "request line too long")
    parts = line[:-2].decode("latin-1").split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(501, f"unsupported protocol version: {version}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated request headers") from None
        if raw == b"\r\n":
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(413, "request headers too large")
        text = raw[:-2].decode("latin-1")
        name, separator, value = text.partition(":")
        if not separator or not name.strip():
            raise HttpError(400, f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = {name: values[-1] for name, values in parse_qs(split.query).items()}
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        _reader=reader,
        _max_body_bytes=int(max_body_bytes),
    )


async def drain_body(request: Request) -> int:
    """Consume and discard a request body; returns the byte count.

    Handlers that reject a request early still drain the body so the
    error response is not racing unread upload data in the socket buffers.
    """
    total = 0
    async for piece in request.iter_body():
        total += len(piece)
    return total


async def write_response(writer: asyncio.StreamWriter, response: Response) -> int:
    """Serialise a response onto the wire; returns body bytes written.

    Bytes bodies get ``Content-Length``; iterator bodies get chunked
    framing and are pulled lazily, awaiting ``drain()`` between chunks so
    a slow client applies backpressure instead of growing the write buffer.
    """
    status = int(response.status)
    phrase = reason_phrase(status) or "Unknown"
    headers = dict(response.headers)
    headers.setdefault("Connection", "close")
    body = response.body

    chunked = not isinstance(body, (bytes, bytearray))
    if chunked:
        headers["Transfer-Encoding"] = "chunked"
    else:
        headers["Content-Length"] = str(len(body))

    head = [f"HTTP/1.1 {status} {phrase}"]
    head.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))

    written = 0
    if not chunked:
        writer.write(bytes(body))
        written = len(body)
        await writer.drain()
        return written

    async def pieces() -> AsyncIterator[bytes]:
        if hasattr(body, "__aiter__"):
            async for piece in body:
                yield piece
        elif hasattr(body, "__iter__"):
            for piece in body:
                yield piece
        else:
            raise ServiceError(f"unsupported response body type: {type(body).__name__}")

    async for piece in pieces():
        if not piece:
            continue
        writer.write(b"%x\r\n" % len(piece) + bytes(piece) + b"\r\n")
        written += len(piece)
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()
    return written
