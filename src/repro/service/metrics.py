"""Request-level metrics of the ATC service, snapshotted as one JSON document.

Every observable the CI load lane asserts on lives here: request counts
(total, per endpoint, per status), in-flight and rejected connections,
executor queue depth, bytes moved in each direction, a bounded latency
reservoir reduced to p50/p95, and the dedup-cache hit rate.  The
``GET /v1/metrics`` endpoint returns exactly :meth:`ServiceMetrics.snapshot`,
whose schema (``repro-service-metrics/2``) is documented in
``docs/service.md`` and pinned by ``tests/test_docs.py`` against a real
server response.

All counters are guarded by one lock because they are updated from the
asyncio event loop *and* from job worker threads; the snapshot is taken
under the same lock, so it is always internally consistent.

Example:
    >>> metrics = ServiceMetrics()
    >>> metrics.request_started("compress")
    >>> metrics.request_finished("compress", 200, 0.25)
    >>> snapshot = metrics.snapshot()
    >>> snapshot["requests"]["total"], snapshot["requests"]["in_flight"]
    (1, 0)
    >>> snapshot["requests"]["by_status"]["200"]
    1
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["METRICS_SCHEMA", "LATENCY_RESERVOIR", "ServiceMetrics", "JobTicket"]

#: Schema tag stamped into every snapshot (and asserted by the docs test).
#: ``/2`` added ``cache.integrity_evictions``.
METRICS_SCHEMA = "repro-service-metrics/2"

#: Number of recent request latencies kept for the percentile estimates.
#: Bounded so a long-lived server's metrics stay O(1) in memory; at CI load
#: (tens of requests) the reservoir simply holds everything.
LATENCY_RESERVOIR = 1024


def _percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return float(sorted_values[rank])


class JobTicket:
    """Queue-depth accounting for one executor job, race-free by state.

    A job is *queued* when submitted, *running* once a worker thread picks
    it up, and *abandoned* when its request timed out (or was cancelled)
    before any worker started it.  The depth gauge counts queued tickets
    only; the started/abandoned transition is guarded so a worker racing a
    timeout can never double-decrement the gauge — whichever transition
    wins, the other becomes a no-op.
    """

    def __init__(self, metrics: "ServiceMetrics") -> None:
        self._metrics = metrics
        self._state = "queued"
        metrics._queue_changed(+1)

    def start(self) -> bool:
        """Worker-side transition; False when the job was abandoned first."""
        with self._metrics._lock:
            if self._state != "queued":
                return False
            self._state = "running"
            self._metrics._queue_depth -= 1
            return True

    def abandon(self) -> None:
        """Caller-side transition after a timeout; no-op once running."""
        with self._metrics._lock:
            if self._state == "queued":
                self._state = "abandoned"
                self._metrics._queue_depth -= 1


class ServiceMetrics:
    """Thread-safe counters behind ``GET /v1/metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self._total = 0
        self._in_flight = 0
        self._rejected = 0
        self._timeouts = 0
        self._aborted = 0
        self._by_endpoint: Dict[str, int] = {}
        self._by_status: Dict[str, int] = {}
        self._queue_depth = 0
        self._bytes_in = 0
        self._bytes_out = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_RESERVOIR)
        self._latency_count = 0
        self._latency_max = 0.0
        self._cache_hits = 0
        self._cache_misses = 0
        self._integrity_evictions = 0

    # -- request lifecycle -----------------------------------------------------------------
    def request_started(self, endpoint: str) -> None:
        """Count an admitted request against its endpoint; raises in-flight."""
        with self._lock:
            self._total += 1
            self._in_flight += 1
            self._by_endpoint[endpoint] = self._by_endpoint.get(endpoint, 0) + 1

    def request_finished(self, endpoint: str, status: Optional[int], seconds: float) -> None:
        """Record the outcome of a request started earlier.

        ``status`` is ``None`` when the client vanished before a response
        could be written (counted as aborted, no status bucket).
        """
        with self._lock:
            self._in_flight -= 1
            if status is None:
                self._aborted += 1
            else:
                key = str(int(status))
                self._by_status[key] = self._by_status.get(key, 0) + 1
            self._latencies.append(float(seconds))
            self._latency_count += 1
            if seconds > self._latency_max:
                self._latency_max = float(seconds)

    def connection_rejected(self) -> None:
        """Count a connection turned away with 429 by the gate."""
        with self._lock:
            self._rejected += 1
            self._by_status["429"] = self._by_status.get("429", 0) + 1

    def request_timeout(self) -> None:
        """Count a request whose processing exceeded the per-request budget."""
        with self._lock:
            self._timeouts += 1

    # -- executor queue --------------------------------------------------------------------
    def job_ticket(self) -> JobTicket:
        """Open a queue-depth ticket for one submitted executor job."""
        return JobTicket(self)

    def _queue_changed(self, delta: int) -> None:
        with self._lock:
            self._queue_depth += delta

    # -- byte counters ---------------------------------------------------------------------
    def add_bytes_in(self, count: int) -> None:
        """Count request-body bytes consumed from clients."""
        with self._lock:
            self._bytes_in += int(count)

    def add_bytes_out(self, count: int) -> None:
        """Count response-body bytes written to clients."""
        with self._lock:
            self._bytes_out += int(count)

    # -- dedup cache -----------------------------------------------------------------------
    def cache_hit(self) -> None:
        """Count a compress request served from the dedup cache."""
        with self._lock:
            self._cache_hits += 1

    def cache_miss(self) -> None:
        """Count a compress request that had to encode."""
        with self._lock:
            self._cache_misses += 1

    def integrity_eviction(self) -> None:
        """Count a cached container evicted after failing verification.

        Wired as the :class:`~repro.service.cache.ContainerCache` callback;
        a nonzero value means the cache found (and refused to re-serve)
        corrupt bytes on disk.
        """
        with self._lock:
            self._integrity_evictions += 1

    # -- snapshot --------------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """One consistent JSON-ready view of every counter (the endpoint body)."""
        with self._lock:
            latencies = sorted(self._latencies)
            lookups = self._cache_hits + self._cache_misses
            return {
                "schema": METRICS_SCHEMA,
                "uptime_seconds": time.monotonic() - self._started_at,
                "requests": {
                    "total": self._total,
                    "in_flight": self._in_flight,
                    "rejected": self._rejected,
                    "timeouts": self._timeouts,
                    "aborted": self._aborted,
                    "by_endpoint": dict(sorted(self._by_endpoint.items())),
                    "by_status": dict(sorted(self._by_status.items())),
                },
                "queue_depth": self._queue_depth,
                "bytes": {"in": self._bytes_in, "out": self._bytes_out},
                "latency_seconds": {
                    "count": self._latency_count,
                    "p50": _percentile(latencies, 0.50),
                    "p95": _percentile(latencies, 0.95),
                    "max": self._latency_max,
                },
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "lookups": lookups,
                    "hit_rate": (self._cache_hits / lookups) if lookups else 0.0,
                    "integrity_evictions": self._integrity_evictions,
                },
            }
