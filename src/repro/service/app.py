"""The ATC service: an asyncio HTTP server over the streaming codec core.

This is the "ATC-as-a-service" deployment mode from the roadmap: the same
compression pipeline the ``repro`` CLI drives locally, exposed as a small
bulk-transfer HTTP API so trace producers (simulators, tracing rigs) can
ship raw address streams to a shared compression tier.

Endpoints (see ``docs/service.md`` for the full contract):

* ``POST /v1/compress``   — raw little-endian ``uint64`` trace in, packed
  container (deterministic tar) out.  Content-addressed: identical
  (trace, config) requests are served from the shared dedup cache.
* ``POST /v1/decompress`` — packed container in, raw trace out (streamed).
* ``POST /v1/inspect``    — packed container in, JSON summary out.
* ``POST /v1/sweep``      — JSON sweep spec in, JSON sweep result out.
* ``GET  /v1/healthz``    — liveness probe.
* ``GET  /v1/metrics``    — JSON counters (:mod:`repro.service.metrics`).

Three invariants hold everywhere:

1. **The event loop never computes.**  Encoding/decoding runs on worker
   threads (which in turn drive the shared executor engine's thread or
   process pool); the loop only shuttles socket bytes and spools bodies.
2. **Memory per connection is bounded.**  Request bodies stream to a
   per-request spool file chunk by chunk; decoded traces stream back the
   same way.  No payload is ever held in memory whole (packed containers
   are the one exception — they are post-compression and small).
3. **Overload is visible.**  The connection gate answers saturation with
   immediate ``429 Too Many Requests`` + ``Retry-After``; per-request
   timeouts cancel executor jobs cooperatively and answer ``504``;
   ``SIGTERM`` drains gracefully and exits 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import shutil
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import AsyncIterator, Callable, Dict, Optional, Tuple

from repro.core.atc import MODE_LOSSLESS, MODE_LOSSY, AtcDecoder, AtcEncoder
from repro.core.executors import resolve_executor
from repro.core.lossy import LossyConfig
from repro.errors import ConfigurationError, ReproError, ServiceError
from repro.service.cache import CONTAINER_MEDIA_TYPE, ContainerCache, pack_container, unpack_container
from repro.service.http import (
    IO_CHUNK_BYTES,
    HttpError,
    Request,
    Response,
    read_request,
    write_response,
)
from repro.service.limits import (
    DEFAULT_RETRY_AFTER,
    CancelToken,
    ConnectionGate,
    DrainController,
    JobCancelled,
)
from repro.service.metrics import ServiceMetrics
from repro.traces.trace import ADDRESS_BYTES, DEFAULT_CHUNK_ADDRESSES, iter_raw_chunks

__all__ = ["ServiceConfig", "AtcService", "BackgroundServer"]

#: How long the drain path waits for in-flight requests after SIGTERM.
DEFAULT_DRAIN_TIMEOUT = 60.0


@dataclass
class ServiceConfig:
    """Everything the service needs to run, validated at construction.

    Attributes:
        host: Bind address; loopback by default (front a reverse proxy for
            anything else — the service itself does no authentication).
        port: TCP port; ``0`` picks an ephemeral port (tests, benchmarks).
        max_connections: Connection-gate capacity; excess gets 429.
        workers: Worker count handed to the shared codec executor.
        executor: Executor spec (``serial``/``thread``/``process``/``None``
            for the ``REPRO_EXECUTOR``/auto default) shared by every job.
        request_timeout: Per-request processing budget in seconds; ``None``
            disables the timeout.
        max_body_bytes: Cap on any request body; overruns answer 413.
        cache_dir: Dedup-cache root; ``None`` uses a private temporary
            directory removed at shutdown (no dedup across restarts).
        retry_after: ``Retry-After`` hint (seconds) on 429 responses.
        drain_timeout: Grace period for in-flight requests at shutdown.
    """

    host: str = "127.0.0.1"
    port: int = 8742
    max_connections: int = 8
    workers: int = 1
    executor: Optional[str] = None
    request_timeout: Optional[float] = 300.0
    max_body_bytes: int = 1 << 30
    cache_dir: Optional[str] = None
    retry_after: int = DEFAULT_RETRY_AFTER
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT

    def __post_init__(self) -> None:
        if not 0 <= int(self.port) <= 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port!r}")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ConfigurationError("request_timeout must be positive (or None to disable)")
        if self.max_body_bytes < ADDRESS_BYTES:
            raise ConfigurationError(f"max_body_bytes must be >= {ADDRESS_BYTES}")
        if self.drain_timeout <= 0:
            raise ConfigurationError("drain_timeout must be positive")
        # The gate constructor validates max_connections / retry_after.
        ConnectionGate(self.max_connections, self.retry_after)


def _json_response(payload, status: int = 200, headers: Optional[Dict[str, str]] = None) -> Response:
    body = (json.dumps(payload, indent=2, default=str) + "\n").encode("utf-8")
    merged = {"Content-Type": "application/json"}
    merged.update(headers or {})
    return Response(status=status, headers=merged, body=body)


class AtcService:
    """The service itself: routing, request lifecycle, shutdown.

    One instance owns one listener, one connection gate, one metrics
    registry, one dedup cache and one shared codec executor.  Run it with
    :meth:`run` (blocking, installs signal handlers when possible) or host
    it in a test/benchmark with :class:`BackgroundServer`.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.gate = ConnectionGate(self.config.max_connections, self.config.retry_after)
        self.drain = DrainController()
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._executor = None
        self._owned_cache_dir: Optional[str] = None
        if self.config.cache_dir is None:
            self._owned_cache_dir = tempfile.mkdtemp(prefix="repro-serve-cache-")
            cache_root = self._owned_cache_dir
        else:
            cache_root = self.config.cache_dir
        self.cache = ContainerCache(
            cache_root, on_integrity_eviction=self.metrics.integrity_eviction
        )
        self._routes: Dict[str, Tuple[str, str, Callable]] = {
            "/v1/compress": ("compress", "POST", self._compress),
            "/v1/decompress": ("decompress", "POST", self._decompress),
            "/v1/inspect": ("inspect", "POST", self._inspect),
            "/v1/sweep": ("sweep", "POST", self._sweep),
            "/v1/healthz": ("healthz", "GET", self._healthz),
            "/v1/metrics": ("metrics", "GET", self._metrics),
        }

    # -- lifecycle -------------------------------------------------------------------------
    def run(self, ready: Optional[Callable[[], None]] = None) -> int:
        """Serve until :meth:`shutdown`; returns the process exit code."""
        return asyncio.run(self.run_async(ready=ready))

    async def run_async(self, ready: Optional[Callable[[], None]] = None) -> int:
        """Async body of :meth:`run` (hostable inside an existing loop)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self.drain.draining:  # shutdown() raced service startup
            self._stop_event.set()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                self._loop.add_signal_handler(signum, self.shutdown)
        self._executor = resolve_executor(self.config.executor, self.config.workers)
        server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        try:
            if ready is not None:
                ready()
            await self._stop_event.wait()
            # Drain: stop accepting, then wait for in-flight connections.
            server.close()
            await server.wait_closed()
            idle = await asyncio.to_thread(self.gate.wait_idle, self.config.drain_timeout)
            return 0 if idle else 1
        finally:
            server.close()
            self._executor.close()
            self._executor = None
            if self._owned_cache_dir is not None:
                shutil.rmtree(self._owned_cache_dir, ignore_errors=True)

    def shutdown(self) -> None:
        """Begin a graceful drain; safe to call from any thread or a signal."""
        self.drain.begin()
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    # -- connection handling ---------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        if self.drain.draining:
            await self._refuse(writer, Response.text(503, "service is draining, not accepting requests"))
            return
        if not self.gate.try_acquire():
            self.metrics.connection_rejected()
            await self._refuse(
                writer,
                Response.text(
                    429,
                    "connection limit reached, retry shortly",
                    {"Retry-After": str(self.gate.retry_after)},
                ),
            )
            return
        try:
            await self._serve_one(reader, writer)
        finally:
            self.gate.release()
            await self._close_writer(writer)

    async def _refuse(self, writer: asyncio.StreamWriter, response: Response) -> None:
        with contextlib.suppress(OSError, asyncio.CancelledError):
            await write_response(writer, response)
        await self._close_writer(writer)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(OSError):
            writer.close()
            with contextlib.suppress(AttributeError):
                await writer.wait_closed()

    async def _serve_one(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._with_timeout(read_request(reader, self.config.max_body_bytes))
        except HttpError as error:
            await self._refuse(writer, Response.text(error.status, str(error), error.headers))
            return
        except asyncio.TimeoutError:
            await self._refuse(writer, Response.text(408, "timed out waiting for the request head"))
            return
        if request is None:  # client connected and went away
            return

        endpoint, handler, route_error = self._route(request)
        self.metrics.request_started(endpoint)
        started = time.monotonic()
        status: Optional[int] = None
        workdir = tempfile.mkdtemp(prefix="repro-serve-")
        token = CancelToken()
        try:
            if route_error is not None:
                response = route_error
            else:
                response = await self._dispatch(handler, request, token, workdir)
            written = await write_response(writer, response)
            self.metrics.add_bytes_out(written)
            status = response.status
        except (OSError, asyncio.CancelledError, asyncio.IncompleteReadError):
            # Client disconnected mid-request (or mid-response): cancel any
            # job still running and account the request as aborted.
            token.cancel()
        finally:
            self.metrics.request_finished(endpoint, status, time.monotonic() - started)
            shutil.rmtree(workdir, ignore_errors=True)

    def _route(self, request: Request) -> Tuple[str, Optional[Callable], Optional[Response]]:
        entry = self._routes.get(request.path)
        if entry is None:
            return "unknown", None, Response.text(404, f"no such endpoint: {request.path}")
        endpoint, method, handler = entry
        if request.method != method:
            return (
                endpoint,
                None,
                Response.text(405, f"{request.path} only accepts {method}", {"Allow": method}),
            )
        return endpoint, handler, None

    async def _dispatch(self, handler, request: Request, token: CancelToken, workdir: str) -> Response:
        try:
            return await self._with_timeout(handler(request, token, Path(workdir)))
        except asyncio.TimeoutError:
            token.cancel()
            self.metrics.request_timeout()
            return Response.text(504, f"request exceeded the {self.config.request_timeout}s budget")
        except HttpError as error:
            return Response.text(error.status, str(error), error.headers)
        except ServiceError as error:
            return Response.text(500, f"internal service error: {error}")
        except ReproError as error:
            # Library-level rejection of client-supplied data or parameters
            # (malformed container, bad codec configuration, corrupt trace).
            return Response.text(400, str(error))
        except Exception as error:  # last resort: a response beats a dropped connection
            return Response.text(500, f"internal error: {type(error).__name__}: {error}")

    def _with_timeout(self, awaitable):
        if self.config.request_timeout is None:
            return awaitable
        return asyncio.wait_for(awaitable, timeout=self.config.request_timeout)

    # -- executor jobs ---------------------------------------------------------------------
    async def _run_job(self, fn: Callable, token: CancelToken):
        """Run a CPU-bound job off the loop with queue-depth accounting.

        On cancellation (the per-request timeout fired, or the client went
        away) the token is cancelled so a running job stops at its next
        chunk boundary, and the ticket is abandoned so a never-started job
        does not leak queue depth.
        """
        ticket = self.metrics.job_ticket()

        def job():
            if not ticket.start():
                raise JobCancelled("job abandoned before a worker picked it up")
            token.raise_if_cancelled()
            return fn()

        future = asyncio.get_running_loop().run_in_executor(None, job)
        # A cancelled request stops awaiting the future; consume its
        # eventual outcome so asyncio never logs an unretrieved exception.
        future.add_done_callback(lambda f: f.cancelled() or f.exception())
        try:
            return await future
        except asyncio.CancelledError:
            token.cancel()
            ticket.abandon()
            raise

    async def _spool_body(self, request: Request, destination: Path) -> Tuple[int, str]:
        """Stream the request body to disk; returns (size, sha256 hex)."""
        digest = hashlib.sha256()
        total = 0
        with destination.open("wb") as spool:
            async for piece in request.iter_body():
                spool.write(piece)
                digest.update(piece)
                total += len(piece)
        self.metrics.add_bytes_in(total)
        return total, digest.hexdigest()

    # -- endpoint handlers -------------------------------------------------------------------
    async def _compress(self, request: Request, token: CancelToken, workdir: Path) -> Response:
        mode, config, params = self._codec_params(request)
        spool = workdir / "trace.bin"
        size, digest = await self._spool_body(request, spool)
        if size == 0:
            raise HttpError(400, "empty trace body (expected little-endian uint64 addresses)")
        if size % ADDRESS_BYTES:
            raise HttpError(
                400,
                f"trace body of {size} bytes is not a multiple of {ADDRESS_BYTES} "
                "(expected packed little-endian uint64 addresses)",
            )

        key = self.cache.key(digest, mode, params)
        entry = self.cache.lookup(key)
        if entry is not None:
            self.metrics.cache_hit()
            cached = "hit"
        else:
            self.metrics.cache_miss()
            cached = "miss"
            workspace = self.cache.workspace(key)

            def encode():
                try:
                    with AtcEncoder(workspace, mode=mode, config=config, executor=self._executor) as enc:
                        enc.encode_stream(token.guard(iter_raw_chunks(spool)))
                        return enc.addresses_coded
                except BaseException:
                    self.cache.discard_workspace(workspace)
                    raise

            coded = await self._run_job(encode, token)
            entry = self.cache.commit(key, workspace, coded)

        body = pack_container(entry.path)
        return Response(
            status=200,
            headers={
                "Content-Type": CONTAINER_MEDIA_TYPE,
                "X-Atc-Cache": cached,
                "X-Atc-Key": entry.key,
                "X-Atc-Addresses": str(entry.addresses),
            },
            body=body,
        )

    async def _decompress(self, request: Request, token: CancelToken, workdir: Path) -> Response:
        chunk_addresses = self._int_query(request, "chunk_addresses", DEFAULT_CHUNK_ADDRESSES)
        spool = workdir / "container.tar"
        size, _ = await self._spool_body(request, spool)
        if size == 0:
            raise HttpError(400, "empty body (expected a packed container archive)")
        container = workdir / "container"
        unpack_container(spool, container)  # ContainerError -> 400 via dispatch
        decoded = workdir / "trace.bin"

        def decode():
            decoder = AtcDecoder(container, executor=self._executor)
            count = 0
            with decoded.open("wb") as sink:
                for chunk in token.guard(decoder.iter_chunks(chunk_addresses)):
                    sink.write(chunk.tobytes())
                    count += len(chunk)
            return count

        count = await self._run_job(decode, token)
        return Response(
            status=200,
            headers={
                "Content-Type": "application/octet-stream",
                "X-Atc-Addresses": str(count),
            },
            body=self._stream_file(decoded),
        )

    async def _inspect(self, request: Request, token: CancelToken, workdir: Path) -> Response:
        spool = workdir / "container.tar"
        size, _ = await self._spool_body(request, spool)
        if size == 0:
            raise HttpError(400, "empty body (expected a packed container archive)")
        container = workdir / "container"
        unpack_container(spool, container)

        def summarize():
            decoder = AtcDecoder(container, executor=self._executor)
            records = decoder.records
            return {
                "metadata": dict(decoder.metadata),
                "intervals": len(records),
                "imitated_intervals": sum(1 for record in records if record.kind == "imitate"),
                "compressed_bytes": decoder.compressed_bytes(),
                "bits_per_address": decoder.bits_per_address(),
            }

        return _json_response(await self._run_job(summarize, token))

    async def _sweep(self, request: Request, token: CancelToken, workdir: Path) -> Response:
        raw = bytearray()
        async for piece in request.iter_body():
            raw.extend(piece)
        self.metrics.add_bytes_in(len(raw))
        try:
            data = json.loads(bytes(raw).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"sweep spec is not valid JSON: {error}") from None
        from repro.experiments import run_sweep, sweep_spec_from_dict

        spec = sweep_spec_from_dict(data)  # ConfigurationError -> 400
        cache_dir = self.cache.directory / "sweeps"

        def run():
            token.raise_if_cancelled()
            result = run_sweep(
                spec,
                cache_dir=cache_dir,
                workers=self.config.workers,
                executor=self.config.executor,
            )
            return json.loads(result.render("json"))

        return _json_response(await self._run_job(run, token))

    async def _healthz(self, request: Request, token: CancelToken, workdir: Path) -> Response:
        import repro

        return _json_response(
            {
                "status": "ok",
                "version": repro.__version__,
                "draining": self.drain.draining,
                "active_connections": self.gate.active,
            }
        )

    async def _metrics(self, request: Request, token: CancelToken, workdir: Path) -> Response:
        return _json_response(self.metrics.snapshot())

    # -- request parameter helpers -----------------------------------------------------------
    def _codec_params(self, request: Request) -> Tuple[str, LossyConfig, Dict]:
        mode = request.query.get("mode", MODE_LOSSLESS)
        if mode not in (MODE_LOSSY, MODE_LOSSLESS):
            raise HttpError(400, f"mode must be '{MODE_LOSSY}' (lossy) or '{MODE_LOSSLESS}', got {mode!r}")
        params = {
            "backend": request.query.get("backend", "bz2"),
            "interval_length": self._int_query(request, "interval_length", 20_000),
            "threshold": self._float_query(request, "threshold", 0.1),
            "chunk_buffer_addresses": self._int_query(request, "chunk_buffer_addresses", 1_000_000),
        }
        config = LossyConfig(workers=self.config.workers, **params)  # invalid values -> 400
        return mode, config, params

    @staticmethod
    def _int_query(request: Request, name: str, default: int) -> int:
        value = request.query.get(name)
        if value is None:
            return default
        try:
            return int(value)
        except ValueError:
            raise HttpError(400, f"query parameter {name} must be an integer, got {value!r}") from None

    @staticmethod
    def _float_query(request: Request, name: str, default: float) -> float:
        value = request.query.get(name)
        if value is None:
            return default
        try:
            return float(value)
        except ValueError:
            raise HttpError(400, f"query parameter {name} must be a number, got {value!r}") from None

    @staticmethod
    def _stream_file(path: Path) -> AsyncIterator[bytes]:
        async def pieces() -> AsyncIterator[bytes]:
            with path.open("rb") as source:
                while True:
                    piece = source.read(IO_CHUNK_BYTES)
                    if not piece:
                        return
                    yield piece

        return pieces()


class BackgroundServer:
    """Host an :class:`AtcService` on a daemon thread (tests, benchmarks).

    Context-manager protocol: entering starts the server and blocks until
    the listener is bound; exiting triggers a graceful drain and joins the
    thread.  The exit code the server would have returned from ``repro
    serve`` is available as :attr:`exit_code` afterwards.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, startup_timeout: float = 30.0) -> None:
        self.service = AtcService(config or ServiceConfig(port=0))
        self.exit_code: Optional[int] = None
        self._startup_timeout = startup_timeout
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, name="repro-serve", daemon=True)

    @property
    def port(self) -> int:
        """Bound TCP port (valid once the context has been entered)."""
        if self.service.port is None:
            raise ServiceError("BackgroundServer has not started yet")
        return self.service.port

    @property
    def address(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.service.config.host}:{self.port}"

    def _run(self) -> None:
        try:
            self.exit_code = self.service.run(ready=self._ready.set)
        except BaseException as error:  # surface startup failures to the waiter
            self._error = error
        finally:
            self._ready.set()

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise ServiceError("service did not start within the startup timeout")
        if self._error is not None:
            raise ServiceError(f"service failed to start: {self._error}") from self._error
        if self.service.port is None:
            raise ServiceError("service stopped before binding its listener")
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.stop()

    def stop(self, timeout: float = 120.0) -> Optional[int]:
        """Drain gracefully and join the server thread; returns the exit code."""
        self.service.shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ServiceError("service did not drain within the stop timeout")
        return self.exit_code

    def wait_ready(self, timeout: float = 5.0) -> bool:
        """Poll ``/v1/healthz`` over a raw socket until it answers 200."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with socket.create_connection((self.service.config.host, self.port), timeout=1.0) as sock:
                    sock.sendall(
                        b"GET /v1/healthz HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
                    )
                    head = sock.recv(64)
                if b" 200 " in head:
                    return True
            except OSError:
                time.sleep(0.05)
        return False
