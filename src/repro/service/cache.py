"""Container wire format and the shared dedup cache of the ATC service.

**Wire format.**  An ATC container is a directory; over HTTP it travels as
an uncompressed, deterministic POSIX tar archive: members are the
container's regular files only, sorted by name, with zeroed mtimes,
``uid=gid=0``, empty owner names and mode ``0644``.  Packing the same
container therefore always produces the same bytes — which is what lets
the CI load lane diff a served archive against a ``repro compress``
container file-for-file, and what makes the ``serve_roundtrip`` benchmark's
payload size an exact drift detector.  The archive is *not* compressed a
second time: the members are already bz2/zlib/lzma payloads.

**Dedup cache.**  ``POST /v1/compress`` is content-addressed: the cache key
is the SHA-256 of the raw request body digest plus every result-affecting
codec parameter and the package version.  The existing
:class:`~repro.experiments.store.ResultStore` is reused as the index (one
small JSON entry per key) with the encoded container directories stored
alongside; identical (trace, config) requests return the stored container
without re-encoding.  Commits are atomic — encode into a uniquely named
workspace, rename into place — so concurrent identical requests race
safely: one rename wins, the others discard their workspace.

Example:
    >>> import tempfile
    >>> cache = ContainerCache(tempfile.mkdtemp())
    >>> key = cache.key("00" * 32, "c", {"backend": "bz2"})
    >>> len(key), cache.lookup(key) is None
    (64, True)
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
import tarfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.core.fsck import scrub_container
from repro.errors import ContainerError
from repro.experiments.store import ResultStore, durable_fsync_enabled, fsync_directory

__all__ = [
    "CONTAINER_MEDIA_TYPE",
    "pack_container",
    "unpack_container",
    "CachedContainer",
    "ContainerCache",
]

#: Media type of packed containers on the wire.
CONTAINER_MEDIA_TYPE = "application/x-tar"

#: Tar members larger than this are rejected on unpack (a decompression-bomb
#: guard: real chunk files are at most a few MB of already-compressed data).
MAX_MEMBER_BYTES = 1 << 31

_unique = threading.Lock()
_counter = 0


def _next_unique() -> int:
    global _counter
    with _unique:
        _counter += 1
        return _counter


def pack_container(directory) -> bytes:
    """Serialize a container directory as a deterministic tar archive.

    Members are the directory's regular files, sorted by name, with all
    non-content metadata zeroed, so the bytes depend only on the files'
    names and contents.  Nested directories are rejected — containers are
    flat by construction.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ContainerError(f"not a container directory: {directory}")
    sink = io.BytesIO()
    with tarfile.open(fileobj=sink, mode="w", format=tarfile.USTAR_FORMAT) as archive:
        for path in sorted(directory.iterdir()):
            if not path.is_file():
                raise ContainerError(f"container holds a non-file entry: {path.name}")
            info = tarfile.TarInfo(name=path.name)
            info.size = path.stat().st_size
            info.mtime = 0
            info.uid = info.gid = 0
            info.uname = info.gname = ""
            info.mode = 0o644
            with path.open("rb") as handle:
                archive.addfile(info, handle)
    return sink.getvalue()


def unpack_container(source, destination) -> int:
    """Extract a packed container archive into a fresh directory.

    Args:
        source: Archive bytes, or a path to an archive file.
        destination: Directory to create (must not already exist).

    Returns:
        Number of files extracted.

    Raises:
        ContainerError: If the archive is not a tar stream, is empty, or
            holds anything but plain relative filenames (path traversal,
            links, directories and oversized members are all refused).
    """
    destination = Path(destination)
    if destination.exists():
        raise ContainerError(f"unpack destination already exists: {destination}")
    if isinstance(source, (bytes, bytearray)):
        handle = io.BytesIO(bytes(source))
    else:
        handle = open(os.fspath(source), "rb")
    extracted = 0
    try:
        try:
            archive = tarfile.open(fileobj=handle, mode="r:")
        except tarfile.TarError as error:
            raise ContainerError(f"request body is not a container archive: {error}") from None
        destination.mkdir(parents=True)
        with archive:
            try:
                members = archive.getmembers()
            except tarfile.TarError as error:
                raise ContainerError(f"malformed container archive: {error}") from None
            for member in members:
                name = member.name
                if (
                    not member.isfile()
                    or name != os.path.basename(name)
                    or name in ("", ".", "..")
                    or name.startswith(".")
                ):
                    raise ContainerError(f"unsafe container archive member: {name!r}")
                if member.size > MAX_MEMBER_BYTES:
                    raise ContainerError(f"container archive member too large: {name!r}")
                reader = archive.extractfile(member)
                if reader is None:
                    raise ContainerError(f"unreadable container archive member: {name!r}")
                with reader, (destination / name).open("wb") as out:
                    shutil.copyfileobj(reader, out)
                extracted += 1
        if not extracted:
            raise ContainerError("container archive holds no files")
    except ContainerError:
        shutil.rmtree(destination, ignore_errors=True)
        raise
    finally:
        if not isinstance(source, (bytes, bytearray)):
            handle.close()
    return extracted


@dataclass(frozen=True)
class CachedContainer:
    """One dedup-cache entry: where the container lives, and its summary."""

    key: str
    path: Path
    addresses: int
    payload_bytes: int


class ContainerCache:
    """Content-addressed store of encoded containers shared by all requests.

    Layout under ``directory``: ``index/<key>.json`` entries (a
    :class:`~repro.experiments.store.ResultStore`) describing each cached
    result, and ``containers/<key>/`` holding the container itself.

    Args:
        directory: Cache root; created on first use.
        on_integrity_eviction: Optional zero-argument callback invoked once
            per evicted entry (the service wires its metrics counter here).
    """

    def __init__(self, directory, on_integrity_eviction=None) -> None:
        self.directory = Path(directory)
        self.store = ResultStore(self.directory / "index")
        self._containers = self.directory / "containers"
        self._eviction_lock = threading.Lock()
        self._on_integrity_eviction = on_integrity_eviction
        #: Cached containers evicted after failing verification on lookup.
        self.integrity_evictions = 0

    def key(self, body_digest: str, mode: str, params: Dict) -> str:
        """Derive the cache key for (trace digest, codec configuration).

        The package version is folded in exactly like the sweep cache does,
        so a codec change can never serve stale containers.
        """
        import repro

        material = json.dumps(
            {
                "body_sha256": body_digest,
                "mode": mode,
                "params": {name: params[name] for name in sorted(params)},
                "version": repro.__version__,
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def container_path(self, key: str) -> Path:
        """Where the committed container for ``key`` lives (or would live)."""
        return self._containers / key

    def _evict(self, key: str, path: Path) -> None:
        """Remove a cached container that failed verification.

        The container directory is deleted and the index entry unlinked —
        never quarantined-in-place, because the invariant is that a lookup
        can only ever return bytes that just passed their digests.  The
        eviction is counted and reported so operators see silent disk
        corruption instead of silently re-encoding forever.
        """
        shutil.rmtree(path, ignore_errors=True)
        try:
            (self.store.directory / f"{key}.json").unlink()
        except OSError:
            pass  # racing eviction, or the index entry already vanished
        with self._eviction_lock:
            self.integrity_evictions += 1
        if self._on_integrity_eviction is not None:
            self._on_integrity_eviction()

    def lookup(self, key: str) -> Optional[CachedContainer]:
        """Return the cached entry for ``key``, or ``None`` on a miss.

        Every hit is verified before it is served: the container's INFO
        footer and per-chunk digests are checked
        (:func:`repro.core.fsck.scrub_container`), and a container that
        fails — flipped bit, truncated chunk, torn write — is *evicted*
        (directory removed, index entry dropped,
        :attr:`integrity_evictions` incremented) and reported as a miss so
        the caller re-encodes.  Corrupt cached bytes are therefore never
        re-served.  An index entry whose container directory vanished
        (pruned by hand) likewise reads as a miss.
        """
        entry = self.store.get(key)
        if entry is None:
            return None
        path = self.container_path(key)
        if not path.is_dir():
            return None
        try:
            scrub = scrub_container(path)
        except ContainerError:
            # Not even openable as a container (e.g. INFO stream gone).
            self._evict(key, path)
            return None
        if not scrub.ok:
            self._evict(key, path)
            return None
        return CachedContainer(
            key=key,
            path=path,
            addresses=int(entry.get("addresses", 0)),
            payload_bytes=int(entry.get("payload_bytes", 0)),
        )

    def workspace(self, key: str) -> Path:
        """A unique scratch directory to encode ``key``'s container into."""
        self._containers.mkdir(parents=True, exist_ok=True)
        return self._containers / f"{key}.{os.getpid()}.{_next_unique()}.tmp"

    def commit(self, key: str, workspace: Path, addresses: int) -> CachedContainer:
        """Atomically publish an encoded workspace as ``key``'s container.

        The rename is the commit point; a loser of a concurrent-identical
        race keeps the winner's container and discards its own workspace,
        so every caller observes exactly one immutable container per key.
        With :data:`~repro.experiments.store.DURABLE_FSYNC_ENV` set, the
        workspace's files and the rename are fsynced first so a power loss
        cannot leave a committed-but-empty container.
        """
        final = self.container_path(key)
        if durable_fsync_enabled():
            for path in sorted(workspace.iterdir()):
                if path.is_file():
                    fd = os.open(str(path), os.O_RDONLY)
                    try:
                        os.fsync(fd)
                    finally:
                        os.close(fd)
            fsync_directory(workspace)
        try:
            os.rename(workspace, final)
        except OSError:
            # Another writer committed first: their container is identical
            # by construction (same key, deterministic encoder).
            shutil.rmtree(workspace, ignore_errors=True)
        else:
            if durable_fsync_enabled():
                fsync_directory(self._containers)
        payload_bytes = sum(path.stat().st_size for path in final.iterdir() if path.is_file())
        self.store.put(
            key,
            {"addresses": int(addresses), "payload_bytes": int(payload_bytes), "container": key},
        )
        entry = self.lookup(key)
        if entry is None:
            raise ContainerError(f"dedup cache commit of {key} did not become visible")
        return entry

    def discard_workspace(self, workspace: Path) -> None:
        """Remove an abandoned workspace (cancelled or failed encode)."""
        shutil.rmtree(workspace, ignore_errors=True)

    def tmp_debris(self):
        """Leftover workspace directories and index temp files (diagnostics)."""
        debris = list(self.store.tmp_files())
        if self._containers.is_dir():
            debris.extend(sorted(self._containers.glob("*.tmp")))
        return debris
