"""Robustness primitives of the ATC service: gate, cancellation, drain.

Three small, independently testable pieces compose the service's
overload behaviour (see ``docs/service.md`` for the operator view):

* :class:`ConnectionGate` — a non-blocking connection semaphore.  A
  connection either acquires a slot immediately or is turned away with
  ``429 Too Many Requests`` and a ``Retry-After`` hint; the service never
  queues connections invisibly, so saturation is observable backpressure
  instead of unbounded latency.  Slots are released when the connection
  ends for *any* reason, including a client disconnecting mid-stream.
* :class:`CancelToken` — cooperative cancellation for executor jobs.  The
  event loop cannot interrupt a compression job running on a worker
  thread or process pool, so jobs check the token at chunk boundaries and
  abort with :class:`JobCancelled`; a timed-out request therefore stops
  consuming CPU at the next boundary instead of running to completion.
* :class:`DrainController` — graceful-shutdown state.  ``SIGTERM`` flips
  the controller to draining: the listener closes, racing connections are
  refused with 503, in-flight requests run to completion, and the process
  exits 0 once the gate reports idle.

Example:
    >>> gate = ConnectionGate(max_connections=1)
    >>> gate.try_acquire(), gate.try_acquire()
    (True, False)
    >>> gate.release(); gate.wait_idle(timeout=1.0)
    True
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError, ServiceError

__all__ = [
    "DEFAULT_RETRY_AFTER",
    "JobCancelled",
    "CancelToken",
    "ConnectionGate",
    "DrainController",
]

#: Default ``Retry-After`` hint (seconds) on 429 responses.  Deliberately
#: short: a saturated ATC service drains quickly once a codec job finishes,
#: so clients should retry soon rather than back off for minutes.
DEFAULT_RETRY_AFTER = 1


class JobCancelled(ServiceError):
    """An executor job observed its :class:`CancelToken` and aborted.

    Raised *inside* the job (on the worker thread) by
    :meth:`CancelToken.raise_if_cancelled`; the dispatcher that cancelled
    the request never sees it — the exception only unwinds the job so its
    encoder/decoder context managers clean up partial output.
    """


class CancelToken:
    """A one-way cancellation flag shared between a request and its job.

    The request side calls :meth:`cancel` (on timeout or client
    disconnect); the job side calls :meth:`raise_if_cancelled` at chunk
    boundaries.  Tokens are single-use and never reset.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; idempotent."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called."""
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        """Abort the job with :class:`JobCancelled` when cancelled."""
        if self._event.is_set():
            raise JobCancelled("the request owning this job was cancelled")

    def guard(self, iterable):
        """Wrap an iterable so each step checks the token first.

        The encoder's chunk stream rides through this, turning every chunk
        boundary into a cancellation point without the codec knowing.
        """
        for item in iterable:
            self.raise_if_cancelled()
            yield item


class ConnectionGate:
    """Non-blocking counting semaphore over live connections.

    Args:
        max_connections: Hard cap on concurrently served connections.
        retry_after: ``Retry-After`` hint (seconds) attached to 429s.
    """

    def __init__(self, max_connections: int, retry_after: int = DEFAULT_RETRY_AFTER) -> None:
        if not isinstance(max_connections, int) or max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be a positive integer, got {max_connections!r}"
            )
        if retry_after < 0:
            raise ConfigurationError(f"retry_after must be non-negative, got {retry_after!r}")
        self.max_connections = max_connections
        self.retry_after = int(retry_after)
        self._active = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)

    @property
    def active(self) -> int:
        """Number of currently held slots."""
        with self._lock:
            return self._active

    def try_acquire(self) -> bool:
        """Take a slot if one is free; never blocks."""
        with self._lock:
            if self._active >= self.max_connections:
                return False
            self._active += 1
            return True

    def release(self) -> None:
        """Return a slot; wakes :meth:`wait_idle` waiters at zero."""
        with self._lock:
            if self._active <= 0:
                raise ServiceError("ConnectionGate.release without a matching acquire")
            self._active -= 1
            if self._active == 0:
                self._idle.notify_all()

    def wait_idle(self, timeout: float = None) -> bool:
        """Block until no slot is held; True on idle, False on timeout.

        The drain path calls this (off the event loop) after the listener
        closed, so "exit 0" means every in-flight request finished.
        """
        with self._lock:
            if self._active == 0:
                return True
            return self._idle.wait_for(lambda: self._active == 0, timeout=timeout)


class DrainController:
    """Graceful-shutdown flag consulted by every connection handler."""

    def __init__(self) -> None:
        self._draining = threading.Event()

    @property
    def draining(self) -> bool:
        """True once shutdown was requested; new requests are refused."""
        return self._draining.is_set()

    def begin(self) -> bool:
        """Enter draining state; returns False when already draining."""
        already = self._draining.is_set()
        self._draining.set()
        return not already
