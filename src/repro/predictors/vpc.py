"""VPC/TCgen-style predictor-based lossless trace compressor (baseline).

The paper compares bytesort against "a VPC-like compressor/decompressor
generated with TCgen" configured as ``DFCM3[2], FCM3[3], FCM2[3], FCM1[3]``
with bzip2 as the second-stage compressor (Section 4.2).  This module
implements that comparator from scratch:

* A bank of value predictors (see :mod:`repro.predictors.value`) runs in
  lock step in the compressor and the decompressor (Shannon's 1951 paired
  predictor construction, which the VPC papers build on).
* For each 64-bit address, the compressor checks the flattened list of
  predictor candidates: if one matches, it emits a single *code byte* (the
  index of the matching candidate); otherwise it emits an escape code byte
  and appends the 8 literal bytes of the address to a second stream.
* Both streams are compressed with a byte-level back-end (bzip2 by
  default), mirroring TCgen's two-stage design.

The file format is self-describing (magic, predictor specification, record
count, stream lengths), so :func:`vpc_decompress` needs no side channel.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.backend import get_backend
from repro.errors import CodecError
from repro.predictors.value import Predictor, make_predictor
from repro.traces.trace import as_address_array

__all__ = ["VpcCodec", "VpcStats", "vpc_compress", "vpc_decompress", "DEFAULT_PREDICTOR_SPECS"]

_MAGIC = b"VPCR"
_ESCAPE = 0xFF
_HEADER = struct.Struct("<4sB B Q I I")  # magic, version, n_specs, count, len(codes), len(literals)

#: The paper's TCgen predictor configuration.
DEFAULT_PREDICTOR_SPECS: Tuple[str, ...] = ("DFCM3[2]", "FCM3[3]", "FCM2[3]", "FCM1[3]")


@dataclass
class VpcStats:
    """Prediction statistics gathered while compressing."""

    total: int = 0
    predicted: int = 0
    escaped: int = 0

    @property
    def prediction_rate(self) -> float:
        """Fraction of addresses coded as a predictor hit."""
        return self.predicted / self.total if self.total else 0.0


class VpcCodec:
    """Predictor-based lossless codec for 64-bit address traces.

    Args:
        predictor_specs: TCgen-style predictor specification strings; the
            default is the paper's configuration.
        backend: Byte-level compressor name or instance for the second stage.
    """

    def __init__(
        self,
        predictor_specs: Sequence[str] = DEFAULT_PREDICTOR_SPECS,
        backend="bz2",
    ) -> None:
        self.predictor_specs = tuple(predictor_specs)
        if not self.predictor_specs:
            raise CodecError("the VPC codec needs at least one predictor")
        self.backend = get_backend(backend)
        self.stats = VpcStats()
        # Validate the specification eagerly so errors surface at build time.
        self._build_predictors()
        max_candidates = sum(
            getattr(p, "depth", 1) if not hasattr(p, "order") else p.depth
            for p in self._build_predictors()
        )
        if max_candidates >= _ESCAPE:
            raise CodecError("too many predictor candidates for single-byte codes")

    # -- construction helpers --------------------------------------------------------
    def _build_predictors(self) -> List[Predictor]:
        return [make_predictor(spec) for spec in self.predictor_specs]

    @staticmethod
    def _candidates(predictors: List[Predictor]) -> List[int]:
        flattened: List[int] = []
        for predictor in predictors:
            flattened.extend(predictor.predictions())
        return flattened

    # -- compression -------------------------------------------------------------------
    def compress(self, addresses) -> bytes:
        """Compress an address sequence into a self-describing byte string."""
        values = as_address_array(addresses)
        predictors = self._build_predictors()
        codes = bytearray()
        literals = bytearray()
        self.stats = VpcStats()
        for value in values.tolist():
            candidates = self._candidates(predictors)
            try:
                code = candidates.index(value)
            except ValueError:
                code = -1
            self.stats.total += 1
            if 0 <= code < _ESCAPE:
                codes.append(code)
                self.stats.predicted += 1
            else:
                codes.append(_ESCAPE)
                literals.extend(struct.pack("<Q", value))
                self.stats.escaped += 1
            for predictor in predictors:
                predictor.update(value)
        packed_codes = self.backend.compress(bytes(codes))
        packed_literals = self.backend.compress(bytes(literals))
        spec_blob = ";".join(self.predictor_specs).encode("ascii")
        header = _HEADER.pack(
            _MAGIC, 1, len(spec_blob), int(values.size), len(packed_codes), len(packed_literals)
        )
        return header + spec_blob + packed_codes + packed_literals

    # -- decompression -------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        """Decompress a byte string produced by :meth:`compress`."""
        if len(payload) < _HEADER.size:
            raise CodecError("truncated VPC stream: missing header")
        magic, version, spec_length, count, codes_length, literals_length = _HEADER.unpack(
            payload[: _HEADER.size]
        )
        if magic != _MAGIC:
            raise CodecError("not a VPC-compressed stream (bad magic)")
        if version != 1:
            raise CodecError(f"unsupported VPC stream version {version}")
        offset = _HEADER.size
        spec_blob = payload[offset : offset + spec_length]
        offset += spec_length
        specs = tuple(spec_blob.decode("ascii").split(";")) if spec_blob else ()
        if specs != self.predictor_specs:
            # The stream carries its own predictor configuration; honour it.
            predictors = [make_predictor(spec) for spec in specs]
        else:
            predictors = self._build_predictors()
        packed_codes = payload[offset : offset + codes_length]
        offset += codes_length
        packed_literals = payload[offset : offset + literals_length]
        codes = self.backend.decompress(packed_codes)
        literals = self.backend.decompress(packed_literals)
        if len(codes) != count:
            raise CodecError("VPC stream is corrupt: code count mismatch")
        values = np.empty(count, dtype=np.uint64)
        literal_offset = 0
        for index, code in enumerate(codes):
            if code == _ESCAPE:
                if literal_offset + 8 > len(literals):
                    raise CodecError("VPC stream is corrupt: missing literal bytes")
                (value,) = struct.unpack_from("<Q", literals, literal_offset)
                literal_offset += 8
            else:
                candidates = self._candidates(predictors)
                if code >= len(candidates):
                    raise CodecError("VPC stream is corrupt: predictor code out of range")
                value = candidates[code]
            values[index] = value
            for predictor in predictors:
                predictor.update(int(value))
        return values


def vpc_compress(addresses, predictor_specs=DEFAULT_PREDICTOR_SPECS, backend="bz2") -> bytes:
    """One-shot VPC compression (convenience wrapper around :class:`VpcCodec`)."""
    return VpcCodec(predictor_specs, backend).compress(addresses)


def vpc_decompress(payload: bytes, backend="bz2") -> np.ndarray:
    """One-shot VPC decompression."""
    return VpcCodec(backend=backend).decompress(payload)
