"""Value predictors used by the VPC/TCgen-style baseline compressor.

The TCgen specification used in the paper's Table 1 is::

    64-Bit Field 1: DFCM3[2], FCM3[3], FCM2[3], FCM1[3]

i.e. a differential finite-context-method predictor of order 3 and
finite-context-method predictors of orders 3, 2 and 1, each with a small
number of candidate values per context.  This module implements those
predictor families plus the simpler last-value and stride predictors so the
baseline compressor (:mod:`repro.predictors.vpc`) can be configured like the
paper's TCgen compressor, and so that the ablation benches can explore other
mixes.

Every predictor has the same tiny interface:

* ``predictions() -> tuple`` — the candidate values for the next input, most
  confident first (may be empty before warm-up);
* ``update(value)`` — observe the actual value.

Predictors must be *deterministic* and must evolve identically during
compression and decompression — that is the Shannon-1951 construction the
VPC family is built on (see Section 3 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Predictor",
    "LastValuePredictor",
    "StridePredictor",
    "FiniteContextPredictor",
    "DifferentialFiniteContextPredictor",
    "make_predictor",
    "default_tcgen_predictors",
]

_MASK64 = (1 << 64) - 1


class Predictor:
    """Interface shared by all value predictors."""

    #: Short identifier used in compressor configuration strings.
    name = "base"

    def predictions(self) -> Tuple[int, ...]:
        """Candidate next values, most confident first (may be empty)."""
        raise NotImplementedError

    def update(self, value: int) -> None:
        """Observe the actual next value."""
        raise NotImplementedError


class LastValuePredictor(Predictor):
    """Predicts that the next value equals the last ``depth`` values seen.

    Example:
        >>> predictor = LastValuePredictor(depth=1)
        >>> predictor.update(42)
        >>> predictor.predictions()
        (42,)
    """

    name = "LV"

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        self.depth = depth
        self._history: List[int] = []

    def predictions(self) -> Tuple[int, ...]:
        return tuple(self._history)

    def update(self, value: int) -> None:
        value &= _MASK64
        if value in self._history:
            self._history.remove(value)
        self._history.insert(0, value)
        del self._history[self.depth :]


class StridePredictor(Predictor):
    """Predicts ``last + stride`` where stride is the last observed delta."""

    name = "ST"

    def __init__(self) -> None:
        self._last = None
        self._stride = 0

    def predictions(self) -> Tuple[int, ...]:
        if self._last is None:
            return ()
        return ((self._last + self._stride) & _MASK64,)

    def update(self, value: int) -> None:
        value &= _MASK64
        if self._last is not None:
            self._stride = (value - self._last) & _MASK64
        self._last = value


class FiniteContextPredictor(Predictor):
    """FCM(order): hash the last ``order`` values, remember recent successors.

    Each context keeps the ``depth`` most recently seen successor values
    (most recent first), the classic FCM[depth] arrangement of VPC/TCgen.
    ``table_bits`` bounds the context table like the hardware-style hash
    tables TCgen generates.
    """

    name = "FCM"

    def __init__(self, order: int, depth: int = 3, table_bits: int = 16) -> None:
        if order < 1:
            raise ConfigurationError("order must be >= 1")
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        self.order = order
        self.depth = depth
        self._table_size = 1 << table_bits
        self._table: Dict[int, List[int]] = {}
        self._history: List[int] = []

    @property
    def name_with_order(self) -> str:
        return f"{self.name}{self.order}[{self.depth}]"

    def _context(self) -> int:
        key = 0
        for value in self._history:
            key = (key * 0x9E3779B97F4A7C15 + value) & _MASK64
        return key % self._table_size

    def predictions(self) -> Tuple[int, ...]:
        if len(self._history) < self.order:
            return ()
        return tuple(self._table.get(self._context(), ()))

    def update(self, value: int) -> None:
        value &= _MASK64
        if len(self._history) >= self.order:
            context = self._context()
            successors = self._table.setdefault(context, [])
            if value in successors:
                successors.remove(value)
            successors.insert(0, value)
            del successors[self.depth :]
        self._history.append(value)
        del self._history[: -self.order]


class DifferentialFiniteContextPredictor(Predictor):
    """DFCM(order): FCM over value *deltas*, prediction is ``last + delta``."""

    name = "DFCM"

    def __init__(self, order: int, depth: int = 2, table_bits: int = 16) -> None:
        if order < 1:
            raise ConfigurationError("order must be >= 1")
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        self.order = order
        self.depth = depth
        self._table_size = 1 << table_bits
        self._table: Dict[int, List[int]] = {}
        self._delta_history: List[int] = []
        self._last = None

    @property
    def name_with_order(self) -> str:
        return f"{self.name}{self.order}[{self.depth}]"

    def _context(self) -> int:
        key = 0
        for delta in self._delta_history:
            key = (key * 0x9E3779B97F4A7C15 + delta) & _MASK64
        return key % self._table_size

    def predictions(self) -> Tuple[int, ...]:
        if self._last is None or len(self._delta_history) < self.order:
            return ()
        deltas = self._table.get(self._context(), ())
        return tuple((self._last + delta) & _MASK64 for delta in deltas)

    def update(self, value: int) -> None:
        value &= _MASK64
        if self._last is not None:
            delta = (value - self._last) & _MASK64
            if len(self._delta_history) >= self.order:
                context = self._context()
                successors = self._table.setdefault(context, [])
                if delta in successors:
                    successors.remove(delta)
                successors.insert(0, delta)
                del successors[self.depth :]
            self._delta_history.append(delta)
            del self._delta_history[: -self.order]
        self._last = value


def make_predictor(spec: str) -> Predictor:
    """Build a predictor from a TCgen-style specification string.

    Supported forms (case-insensitive): ``"LV"``, ``"LV2"``, ``"ST"``,
    ``"FCM3[3]"``, ``"DFCM3[2]"``.  The number right after FCM/DFCM is the
    context order, the bracketed number is the per-context depth.
    """
    text = spec.strip().upper()
    if text.startswith("DFCM"):
        order, depth = _parse_order_depth(text[len("DFCM") :], default_depth=2)
        return DifferentialFiniteContextPredictor(order=order, depth=depth)
    if text.startswith("FCM"):
        order, depth = _parse_order_depth(text[len("FCM") :], default_depth=3)
        return FiniteContextPredictor(order=order, depth=depth)
    if text.startswith("LV"):
        remainder = text[len("LV") :]
        depth = int(remainder) if remainder else 1
        return LastValuePredictor(depth=depth)
    if text == "ST":
        return StridePredictor()
    raise ConfigurationError(f"unknown predictor specification {spec!r}")


def _parse_order_depth(text: str, default_depth: int) -> Tuple[int, int]:
    if "[" in text:
        order_text, depth_text = text.split("[", 1)
        depth = int(depth_text.rstrip("]"))
    else:
        order_text, depth = text, default_depth
    if not order_text:
        raise ConfigurationError("FCM/DFCM specifications need an order, e.g. FCM3[3]")
    return int(order_text), depth


def default_tcgen_predictors() -> List[Predictor]:
    """The predictor bank of the paper's TCgen specification.

    ``DFCM3[2], FCM3[3], FCM2[3], FCM1[3]`` — see Section 4.2.
    """
    return [make_predictor(spec) for spec in ("DFCM3[2]", "FCM3[3]", "FCM2[3]", "FCM1[3]")]
