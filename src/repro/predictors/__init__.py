"""Predictor substrate: VPC/TCgen-style baseline and the C/DC predictor."""

from repro.predictors.cdc import CdcConfig, CdcPredictor, PredictionBreakdown, simulate_cdc
from repro.predictors.value import (
    DifferentialFiniteContextPredictor,
    FiniteContextPredictor,
    LastValuePredictor,
    Predictor,
    StridePredictor,
    default_tcgen_predictors,
    make_predictor,
)
from repro.predictors.vpc import (
    DEFAULT_PREDICTOR_SPECS,
    VpcCodec,
    VpcStats,
    vpc_compress,
    vpc_decompress,
)

__all__ = [
    "Predictor",
    "LastValuePredictor",
    "StridePredictor",
    "FiniteContextPredictor",
    "DifferentialFiniteContextPredictor",
    "make_predictor",
    "default_tcgen_predictors",
    "VpcCodec",
    "VpcStats",
    "vpc_compress",
    "vpc_decompress",
    "DEFAULT_PREDICTOR_SPECS",
    "CdcConfig",
    "CdcPredictor",
    "PredictionBreakdown",
    "simulate_cdc",
]
