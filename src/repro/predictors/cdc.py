"""C/DC (CZone / Delta Correlation) address predictor.

Figure 5 of the paper evaluates lossy-trace fidelity by running "an address
predictor based on the C/DC prefetcher" (Nesbit, Dhodapkar & Smith, PACT
2004) over the exact and the lossy trace and comparing the breakdown of
non-predicted / correctly predicted / mispredicted addresses.  The paper's
configuration, reproduced here as defaults, is:

* 64-KByte CZones (the address space is partitioned into concentration
  zones; prediction only uses history from the same zone),
* a 256-entry index table (one entry per active CZone, direct-mapped),
* a 256-entry global history buffer (GHB) holding the most recent addresses,
  each entry linked to the previous entry of the same CZone,
* a 2-delta correlation key: the last two address deltas of the zone are
  looked up in the zone's delta history; on a match the delta that followed
  the previous occurrence is used to predict the next address in the zone.

"If there is no match for the correlation key, the next address in the
CZone will not be predicted.  Otherwise, the predicted address is stored in
the index-table entry and will be compared with the next address in that
CZone."  The per-address classification (non-predicted / correct /
incorrect) is exactly what :meth:`CdcPredictor.run` returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


from repro.errors import ConfigurationError
from repro.traces.trace import as_address_array

__all__ = ["CdcConfig", "PredictionBreakdown", "CdcPredictor", "simulate_cdc"]


@dataclass(frozen=True)
class CdcConfig:
    """Configuration of the C/DC predictor (paper defaults)."""

    czone_bytes: int = 64 * 1024
    index_entries: int = 256
    ghb_entries: int = 256
    delta_key_length: int = 2
    block_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("czone_bytes", "index_entries", "ghb_entries", "block_bytes"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ConfigurationError(f"{name} must be a positive power of two, got {value}")
        if self.delta_key_length < 1:
            raise ConfigurationError("delta_key_length must be >= 1")
        if self.czone_bytes < self.block_bytes:
            raise ConfigurationError("a CZone must be at least one block")


@dataclass
class PredictionBreakdown:
    """Counts of the three per-address outcomes plotted in Figure 5."""

    non_predicted: int = 0
    correct: int = 0
    incorrect: int = 0

    @property
    def total(self) -> int:
        return self.non_predicted + self.correct + self.incorrect

    def fractions(self) -> dict:
        """Return the three outcome fractions (they sum to 1.0)."""
        total = self.total
        if total == 0:
            return {"non_predicted": 0.0, "correct": 0.0, "incorrect": 0.0}
        return {
            "non_predicted": self.non_predicted / total,
            "correct": self.correct / total,
            "incorrect": self.incorrect / total,
        }

    def distance(self, other: "PredictionBreakdown") -> float:
        """L1 distance between two outcome distributions (0 = identical)."""
        mine = self.fractions()
        theirs = other.fractions()
        return sum(abs(mine[key] - theirs[key]) for key in mine)


class _GhbEntry:
    """One slot of the global history buffer."""

    __slots__ = ("block", "previous", "previous_generation", "generation")

    def __init__(self) -> None:
        self.block = 0
        self.previous = -1
        self.previous_generation = -1
        self.generation = -1


class _IndexEntry:
    """One slot of the CZone index table."""

    __slots__ = ("czone", "head", "head_generation", "prediction")

    def __init__(self) -> None:
        self.czone = -1
        self.head = -1
        self.head_generation = -1
        self.prediction: Optional[int] = None


class CdcPredictor:
    """GHB-based CZone / Delta-Correlation next-address predictor."""

    def __init__(self, config: CdcConfig = CdcConfig()) -> None:
        self.config = config
        self._czone_shift = (config.czone_bytes // config.block_bytes).bit_length() - 1
        self._index = [_IndexEntry() for _ in range(config.index_entries)]
        self._ghb = [_GhbEntry() for _ in range(config.ghb_entries)]
        self._next_slot = 0
        self._generation = 0
        self.breakdown = PredictionBreakdown()

    # -- internals --------------------------------------------------------------------
    def _czone_of(self, block: int) -> int:
        return block >> self._czone_shift

    def _index_entry(self, czone: int) -> _IndexEntry:
        return self._index[czone % self.config.index_entries]

    def _zone_history(self, entry: _IndexEntry, max_length: int) -> List[int]:
        """Most recent block addresses of the zone, newest first.

        Each GHB entry records the generation of the entry it pointed to at
        write time, so a link is followed only when the target slot still
        holds that exact entry (it may have been overwritten by the circular
        buffer since).
        """
        history: List[int] = []
        slot = entry.head
        expected_generation = entry.head_generation
        while slot >= 0 and len(history) < max_length:
            ghb_entry = self._ghb[slot]
            if ghb_entry.generation != expected_generation:
                break
            history.append(ghb_entry.block)
            slot = ghb_entry.previous
            expected_generation = ghb_entry.previous_generation
        return history

    def _predict_next(self, entry: _IndexEntry) -> Optional[int]:
        """Delta-correlation prediction for the zone's next block address."""
        key_length = self.config.delta_key_length
        history = self._zone_history(entry, max_length=self.config.ghb_entries)
        if len(history) < key_length + 2:
            return None
        # history is newest-first; deltas[i] = history[i] - history[i+1]
        deltas = [history[i] - history[i + 1] for i in range(len(history) - 1)]
        key = deltas[:key_length]
        # Search older delta history for the same key; on a match the delta
        # that followed it (i.e. the more recent one) is the prediction.
        for start in range(1, len(deltas) - key_length + 1):
            if deltas[start : start + key_length] == key:
                predicted_delta = deltas[start - 1]
                return history[0] + predicted_delta
        return None

    # -- public API ----------------------------------------------------------------------
    def access_block(self, block: int) -> str:
        """Process one block address; returns its Figure-5 classification.

        Returns one of ``"non_predicted"``, ``"correct"``, ``"incorrect"``.
        """
        block = int(block)
        czone = self._czone_of(block)
        entry = self._index_entry(czone)
        if entry.czone != czone:
            # Index-table conflict or first touch: the zone state is reset.
            entry.czone = czone
            entry.head = -1
            entry.head_generation = -1
            entry.prediction = None
        if entry.prediction is None:
            outcome = "non_predicted"
            self.breakdown.non_predicted += 1
        elif entry.prediction == block:
            outcome = "correct"
            self.breakdown.correct += 1
        else:
            outcome = "incorrect"
            self.breakdown.incorrect += 1
        # Insert the address into the GHB and relink the zone's chain.
        slot = self._next_slot
        self._next_slot = (self._next_slot + 1) % self.config.ghb_entries
        ghb_entry = self._ghb[slot]
        ghb_entry.block = block
        ghb_entry.previous = entry.head
        ghb_entry.previous_generation = entry.head_generation
        ghb_entry.generation = self._generation
        entry.head = slot
        entry.head_generation = self._generation
        self._generation += 1
        # Compute the prediction for the *next* address of this zone.
        entry.prediction = self._predict_next(entry)
        return outcome

    def run(self, blocks) -> PredictionBreakdown:
        """Classify every address of a block-address trace."""
        for block in as_address_array(blocks).tolist():
            self.access_block(block)
        return self.breakdown


def simulate_cdc(blocks, config: CdcConfig = CdcConfig()) -> PredictionBreakdown:
    """Run a fresh C/DC predictor over ``blocks`` and return the breakdown."""
    return CdcPredictor(config).run(blocks)
