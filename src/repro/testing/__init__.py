"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the I/O fault-injection harness used by the
integrity test suite and the CI chaos lane; it lives in the package (not
under ``tests/``) so out-of-process chaos scripts can drive the same
faults through ``python -m repro.testing.faults``.
"""

from repro.testing.faults import TransientEIO, flip_bit, torn_write, truncate_file

__all__ = ["flip_bit", "truncate_file", "torn_write", "TransientEIO"]
