"""I/O fault injection for the integrity test suite and the CI chaos lane.

Three on-disk corruption primitives plus one transient-error context
manager, each modelling a real failure:

* :func:`flip_bit` — a single flipped bit (decaying media, bad RAM on the
  write path);
* :func:`truncate_file` — a short file (crash mid-append, partial copy);
* :func:`torn_write` — a file whose *size* survived but whose tail was
  never written (power loss after a rename was journalled but before the
  renamed file's data blocks hit disk: the tail reads back as zeros);
* :class:`TransientEIO` — reads that fail with ``EIO`` a few times and
  then succeed (a flaky disk or network filesystem).

All three file mutators operate in place and return enough information to
assert on (the offset touched, the bytes removed).  They are deliberately
tiny and dependency-free; the CI chaos lane drives them out-of-process via
``python -m repro.testing.faults`` against a live sweep store or service
cache, e.g.::

    python -m repro.testing.faults flip-bit cache/containers/<key>/2.bz2 101
    python -m repro.testing.faults torn-write cache/index/<hash>.json 10
"""

from __future__ import annotations

import errno
import os
import sys
from pathlib import Path
from typing import Callable, Optional, Union

__all__ = ["flip_bit", "truncate_file", "torn_write", "TransientEIO", "main"]


def flip_bit(path, bit_offset: int) -> int:
    """Flip one bit of a file in place; returns the affected byte offset.

    ``bit_offset`` counts from bit 0 of byte 0 (LSB-first within a byte),
    so a file of ``n`` bytes accepts offsets ``0 .. 8*n - 1``.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not 0 <= bit_offset < 8 * len(data):
        raise ValueError(
            f"bit offset {bit_offset} out of range for {len(data)}-byte file {path}"
        )
    byte_offset = bit_offset // 8
    data[byte_offset] ^= 1 << (bit_offset % 8)
    path.write_bytes(bytes(data))
    return byte_offset


def truncate_file(path, length: int) -> int:
    """Truncate a file to ``length`` bytes; returns the bytes removed.

    ``length`` must not exceed the current size (growing a file is not a
    corruption this harness models).
    """
    path = Path(path)
    size = path.stat().st_size
    if not 0 <= length <= size:
        raise ValueError(f"cannot truncate {size}-byte file {path} to {length} bytes")
    with open(path, "r+b") as handle:
        handle.truncate(length)
    return size - length


def torn_write(path, keep_bytes: int) -> int:
    """Zero-fill a file's tail, keeping the first ``keep_bytes`` intact.

    Models the torn-write window of rename-based commits: the rename
    reached the journal, the file has its full size, but data blocks past
    ``keep_bytes`` never made it to disk and read back as zeros.  This is
    exactly the failure :data:`~repro.experiments.store.DURABLE_FSYNC_ENV`
    exists to close.  Returns the number of zeroed bytes.
    """
    path = Path(path)
    size = path.stat().st_size
    if not 0 <= keep_bytes <= size:
        raise ValueError(f"cannot keep {keep_bytes} bytes of {size}-byte file {path}")
    with open(path, "r+b") as handle:
        handle.seek(keep_bytes)
        handle.write(b"\x00" * (size - keep_bytes))
    return size - keep_bytes


class TransientEIO:
    """Make the first ``failures`` matching ``Path`` reads raise ``EIO``.

    Patches :meth:`pathlib.Path.read_bytes` and
    :meth:`pathlib.Path.read_text` while active; a read whose path
    satisfies ``match`` fails with ``OSError(errno.EIO)`` until the failure
    budget is spent, after which reads pass through untouched — the
    transient-fault shape retry loops must survive.

    Args:
        match: Substring of the path, or a ``path -> bool`` predicate.
            ``None`` matches every read.
        failures: How many matching reads fail before recovery.

    Example:
        >>> import tempfile
        >>> target = Path(tempfile.mkdtemp()) / "data.bin"
        >>> _ = target.write_bytes(b"ok")
        >>> with TransientEIO(match="data.bin", failures=1) as fault:
        ...     try:
        ...         target.read_bytes()
        ...     except OSError as error:
        ...         print(error.errno == errno.EIO)
        ...     print(target.read_bytes())
        True
        b'ok'
        >>> fault.failures_injected
        1
    """

    def __init__(
        self,
        match: Optional[Union[str, Callable[[Path], bool]]] = None,
        failures: int = 1,
    ) -> None:
        self._match = match
        self._budget = int(failures)
        self.failures_injected = 0
        self._originals = {}

    def _matches(self, path: Path) -> bool:
        if self._match is None:
            return True
        if callable(self._match):
            return bool(self._match(path))
        return self._match in str(path)

    def _maybe_fail(self, path: Path) -> None:
        if self._budget > 0 and self._matches(path):
            self._budget -= 1
            self.failures_injected += 1
            raise OSError(errno.EIO, "injected transient I/O error", str(path))

    def __enter__(self) -> "TransientEIO":
        self._originals = {
            "read_bytes": Path.read_bytes,
            "read_text": Path.read_text,
        }
        fault = self

        def read_bytes(self):  # noqa: ANN001 - patched method signature
            fault._maybe_fail(self)
            return fault._originals["read_bytes"](self)

        def read_text(self, *args, **kwargs):  # noqa: ANN001
            fault._maybe_fail(self)
            return fault._originals["read_text"](self, *args, **kwargs)

        Path.read_bytes = read_bytes  # type: ignore[method-assign]
        Path.read_text = read_text  # type: ignore[method-assign]
        return self

    def __exit__(self, *exc_info) -> None:
        Path.read_bytes = self._originals["read_bytes"]  # type: ignore[method-assign]
        Path.read_text = self._originals["read_text"]  # type: ignore[method-assign]
        self._originals = {}


def main(argv=None) -> int:
    """Command-line fault injector (the CI chaos lane's crowbar).

    Usage::

        python -m repro.testing.faults flip-bit   PATH BIT_OFFSET
        python -m repro.testing.faults truncate   PATH LENGTH
        python -m repro.testing.faults torn-write PATH KEEP_BYTES
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {"flip-bit": flip_bit, "truncate": truncate_file, "torn-write": torn_write}
    if len(argv) != 3 or argv[0] not in commands:
        print(main.__doc__, file=sys.stderr)
        return 2
    command, path, amount = argv
    if not os.path.isfile(path):
        print(f"fault target is not a file: {path}", file=sys.stderr)
        return 2
    try:
        touched = commands[command](path, int(amount))
    except (ValueError, OSError) as error:
        print(f"fault injection failed: {error}", file=sys.stderr)
        return 1
    print(f"{command} {path}: {touched}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
