"""Expansion of a sweep spec into runnable, content-addressed units.

:func:`expand_sweep` turns a :class:`~repro.experiments.spec.SweepSpec`
into an :class:`ExperimentPlan`: one :class:`ExperimentUnit` per grid cell
``(workload, filter, codec)``, with every scale default resolved into the
unit, so a unit is self-contained and hashable.

The **unit hash** is a SHA-256 over the canonical JSON of the resolved unit
plus a *code version* string (``repro.__version__`` by default).  It is the
key of the on-disk result cache (:mod:`repro.experiments.store`): re-running
a sweep skips every cell whose hash already has a stored result, and bumping
the package version — or editing any parameter that reaches the unit —
invalidates exactly the affected cells.

Example:
    >>> from repro.experiments.spec import loads_sweep_spec
    >>> spec = loads_sweep_spec(
    ...     '{"name": "s", "workloads": ["429.mcf", "433.milc"],'
    ...     ' "codecs": ["lossless", "lossy"]}', format="json")
    >>> plan = expand_sweep(spec)
    >>> len(plan.units)
    4
    >>> plan.units[0].workload.name, plan.units[0].codec.kind
    ('429.mcf', 'lossless')
    >>> len(plan.units[0].unit_hash("v1"))  # stable SHA-256 hex digest
    64
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.spec import (
    CodecSpec,
    EvaluationScale,
    FilterSpec,
    SweepSpec,
    WorkloadSpec,
)

__all__ = ["ExperimentUnit", "ExperimentPlan", "expand_sweep", "default_code_version"]


def default_code_version() -> str:
    """The code-version string mixed into unit hashes (package version)."""
    import repro

    return f"repro-{repro.__version__}"


@dataclass(frozen=True)
class ExperimentUnit:
    """One runnable grid cell: a workload, a filter and a codec.

    The workload spec is stored *resolved* (references and seed filled from
    the sweep scale), so two sweeps whose cells coincide after inheritance
    share cache entries.

    Attributes:
        workload: Resolved workload cell.
        filter: Filter-cache cell.
        codec: Codec cell.
        scale: The sweep scale (codec parameter inheritance + fidelity grid).
        fidelity: Record the lossy miss-ratio error for this cell.
    """

    workload: WorkloadSpec
    filter: FilterSpec
    codec: CodecSpec
    scale: EvaluationScale
    fidelity: bool = False

    @property
    def label(self) -> str:
        """Human-readable cell id, e.g. ``429.mcf/l1-32KB-4w/lossless``."""
        return f"{self.workload.name}/{self.filter.name}/{self.codec.name}"

    def to_dict(self) -> Dict:
        """Canonical plain-data form of the cell (hash input)."""
        return {
            "workload": self.workload.to_dict(),
            "filter": self.filter.to_dict(),
            "codec": self.codec.to_dict(),
            "scale": self.scale.to_dict(),
            "fidelity": self.fidelity,
        }

    def hash_payload(self) -> Dict:
        """The result-affecting parameters of the cell, scale-resolved.

        Deliberately narrower than :meth:`to_dict`: cosmetic labels are
        excluded and scale knobs enter only through the parameters they
        resolve into, so two sweeps whose cells coincide after inheritance
        share cache entries, and renaming a column never invalidates one.
        """
        payload: Dict = {
            "workload": {
                "name": self.workload.name,
                "references": self.workload.references,
                "seed": self.workload.seed,
            },
            "filter": {
                "capacity_bytes": self.filter.capacity_bytes,
                "associativity": self.filter.associativity,
                "block_bytes": self.filter.block_bytes,
                "policy": self.filter.policy,
            },
            "codec": self.codec.resolved_params(self.scale),
        }
        if self.fidelity:
            payload["fidelity"] = {"set_counts": list(self.scale.set_counts)}
        return payload

    def unit_hash(self, code_version: str) -> str:
        """Content hash of (resolved cell parameters, code version).

        Canonical JSON (sorted keys, no whitespace) keeps the digest stable
        across Python versions and dict orderings.
        """
        canonical = json.dumps(
            {"unit": self.hash_payload(), "code_version": code_version},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ExperimentPlan:
    """The expanded form of a sweep: every unit, in grid order.

    Units are ordered workload-major, then filter, then codec — the same
    order the tables render in — and grouped so the runner can generate
    each (workload, filter) trace once and evaluate all codec cells on it.
    """

    spec: SweepSpec
    units: Tuple[ExperimentUnit, ...]

    def groups(self) -> List[Tuple[Tuple[WorkloadSpec, FilterSpec], Tuple[ExperimentUnit, ...]]]:
        """Units grouped by (workload, filter), preserving grid order.

        Each group shares one cache-filtered trace, the expensive part of a
        cell; the runner parallelises across groups.
        """
        grouped: Dict[Tuple[WorkloadSpec, FilterSpec], List[ExperimentUnit]] = {}
        for unit in self.units:
            grouped.setdefault((unit.workload, unit.filter), []).append(unit)
        return [(key, tuple(units)) for key, units in grouped.items()]

    def shard_units(
        self, shard_index: int, shard_count: int, code_version: str
    ) -> Tuple[ExperimentUnit, ...]:
        """The units shard ``shard_index`` of ``shard_count`` owns, grid order.

        Assignment is deterministic content-addressed sharding: a unit
        belongs to the (1-based) shard ``i`` of ``N`` iff
        ``int(unit_hash, 16) % N == i - 1``.  Every worker that expands
        the same spec under the same code version computes the same
        partition with no coordination, and the shards are disjoint and
        exhaustive by construction.  A shard may legitimately be empty
        (small grid, large ``N``).
        """
        if shard_count < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"shard count must be >= 1, got {shard_count}")
        if not 1 <= shard_index <= shard_count:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"shard index must be in 1..{shard_count}, got {shard_index}"
            )
        return tuple(
            unit
            for unit in self.units
            if int(unit.unit_hash(code_version), 16) % shard_count == shard_index - 1
        )


def expand_sweep(spec: SweepSpec) -> ExperimentPlan:
    """Expand a sweep spec into its plan (workload-major grid order)."""
    units = tuple(
        ExperimentUnit(
            workload=workload.resolve(spec.scale),
            filter=filter_spec,
            codec=codec,
            scale=spec.scale,
            fidelity=spec.fidelity and codec.kind == "lossy",
        )
        for workload in spec.workloads
        for filter_spec in spec.filters
        for codec in spec.codecs
    )
    return ExperimentPlan(spec=spec, units=units)
