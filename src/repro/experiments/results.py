"""Typed sweep results and their table/export forms.

A finished sweep aggregates into a :class:`SweepResult`: one
:class:`UnitResult` row per grid cell, in grid order.  The result renders
into the repository's plain-text tables (via
:func:`repro.analysis.reporting.render_table`), GitHub-flavoured Markdown,
CSV and JSON — the four formats the ``repro sweep report`` subcommand
exposes.

Example:
    >>> rows = (
    ...     UnitResult(workload="429.mcf", filter="l1", codec="lossless",
    ...                addresses=100, payload_bytes=50, bits_per_address=4.0),
    ...     UnitResult(workload="429.mcf", filter="l1", codec="lossy",
    ...                addresses=100, payload_bytes=25, bits_per_address=2.0),
    ... )
    >>> result = SweepResult(name="demo", rows=rows)
    >>> print(result.to_csv().splitlines()[1])
    429.mcf,l1,lossless,100,50,4.0000,no
    >>> "| lossless | lossy |" in result.to_markdown()
    True
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["UnitResult", "SweepResult"]

#: Columns of the CSV export, in order.
_CSV_COLUMNS = ("workload", "filter", "codec", "addresses", "payload_bytes",
                "bits_per_address", "cached")


@dataclass(frozen=True)
class UnitResult:
    """The measured outcome of one grid cell.

    Attributes:
        workload: Workload label of the cell.
        filter: Filter label of the cell.
        codec: Codec label of the cell.
        addresses: Length of the cache-filtered trace the codec saw.
        payload_bytes: Compressed size in bytes.
        bits_per_address: The paper's headline metric for the cell.
        seconds: Wall-clock evaluation time (0 for cached cells).
        cached: True when the value came from the result store.
        extra: Optional auxiliary metrics (e.g. ``max_miss_ratio_error``
            for lossy cells of a fidelity sweep).
    """

    workload: str
    filter: str
    codec: str
    addresses: int
    payload_bytes: int
    bits_per_address: float
    seconds: float = 0.0
    cached: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """Plain-data form (JSON export / cache entry payload)."""
        out: Dict = {
            "workload": self.workload,
            "filter": self.filter,
            "codec": self.codec,
            "addresses": self.addresses,
            "payload_bytes": self.payload_bytes,
            "bits_per_address": self.bits_per_address,
            "seconds": round(self.seconds, 6),
            "cached": self.cached,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out


@dataclass(frozen=True)
class SweepResult:
    """Every cell of a finished sweep, in grid order.

    Attributes:
        name: The sweep's name.
        rows: One :class:`UnitResult` per cell.
    """

    name: str
    rows: Tuple[UnitResult, ...]

    # -- aggregation ----------------------------------------------------------------
    @property
    def codec_labels(self) -> List[str]:
        """Codec labels in first-appearance (grid) order."""
        labels: List[str] = []
        for row in self.rows:
            if row.codec not in labels:
                labels.append(row.codec)
        return labels

    def tables(self) -> "Dict[str, Dict[str, Dict[str, float]]]":
        """Bits-per-address grids, one per filter label.

        Returns ``{filter: {workload: {codec: bpa}}}`` — the shape
        :func:`repro.analysis.reporting.render_table` consumes directly.
        """
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for row in self.rows:
            out.setdefault(row.filter, {}).setdefault(row.workload, {})[row.codec] = (
                row.bits_per_address
            )
        return out

    def cached_count(self) -> int:
        """Number of cells served from the result store."""
        return sum(1 for row in self.rows if row.cached)

    def normalized(self) -> "SweepResult":
        """The scheduling-invariant canonical form of the result.

        ``seconds`` (wall-clock) and ``cached`` (which store served the
        row) are the only fields that depend on *how* a sweep ran rather
        than *what* it computed; zeroing them makes two runs of the same
        grid — serial, sharded, stolen, resumed after a crash — render
        **byte-identical** canonical JSON.  This is the byte-identity
        oracle the distributed-sweep fault-injection harness diffs against
        (see ``docs/distributed-sweeps.md``).

        Example:
            >>> timed = UnitResult(workload="w", filter="f", codec="c",
            ...                    addresses=10, payload_bytes=5,
            ...                    bits_per_address=4.0, seconds=1.25, cached=True)
            >>> SweepResult("s", (timed,)).normalized().rows[0].seconds
            0.0
        """
        return SweepResult(
            name=self.name,
            rows=tuple(
                UnitResult(
                    workload=row.workload,
                    filter=row.filter,
                    codec=row.codec,
                    addresses=row.addresses,
                    payload_bytes=row.payload_bytes,
                    bits_per_address=row.bits_per_address,
                    seconds=0.0,
                    cached=False,
                    extra=dict(row.extra),
                )
                for row in self.rows
            ),
        )

    # -- exports --------------------------------------------------------------------
    def to_text(self) -> str:
        """Plain-text tables in the repository's Table 1/3 style."""
        from repro.analysis.reporting import render_table

        sections = []
        for filter_label, rows in self.tables().items():
            sections.append(
                render_table(
                    f"Sweep {self.name} [{filter_label}]: bits per address",
                    rows,
                    self.codec_labels,
                )
            )
        return "\n\n".join(sections)

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown: one bits-per-address table per filter."""
        lines: List[str] = [f"# Sweep `{self.name}`", ""]
        for filter_label, rows in self.tables().items():
            columns = self.codec_labels
            lines.append(f"## Filter `{filter_label}` — bits per address")
            lines.append("")
            lines.append("| workload | " + " | ".join(columns) + " |")
            lines.append("| --- | " + " | ".join("---:" for _ in columns) + " |")
            for workload, values in rows.items():
                cells = [
                    f"{values[c]:.4f}" if c in values else "n/a" for c in columns
                ]
                lines.append(f"| {workload} | " + " | ".join(cells) + " |")
            from repro.analysis.metrics import arithmetic_mean

            means = [
                arithmetic_mean([values[c] for values in rows.values() if c in values])
                for c in columns
            ]
            lines.append(
                "| *arith. mean* | " + " | ".join(f"*{m:.4f}*" for m in means) + " |"
            )
            lines.append("")
        extras = [row for row in self.rows if row.extra]
        if extras:
            lines.append("## Auxiliary metrics")
            lines.append("")
            for row in extras:
                rendered = ", ".join(f"{k} = {v:.4f}" for k, v in sorted(row.extra.items()))
                lines.append(f"- `{row.workload}/{row.filter}/{row.codec}`: {rendered}")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def to_csv(self) -> str:
        """CSV export, one row per cell (stable column order)."""
        import csv

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(_CSV_COLUMNS)
        for row in self.rows:
            writer.writerow(
                [
                    row.workload,
                    row.filter,
                    row.codec,
                    row.addresses,
                    row.payload_bytes,
                    f"{row.bits_per_address:.4f}",
                    "yes" if row.cached else "no",
                ]
            )
        return buffer.getvalue()

    def to_json(self) -> str:
        """JSON export: the sweep name plus every row's plain-data form."""
        return json.dumps(
            {"name": self.name, "rows": [row.to_dict() for row in self.rows]},
            indent=1,
            sort_keys=True,
        )

    def render(self, format: str = "text") -> str:
        """Render in one of ``text``, ``markdown``, ``csv``, ``json``."""
        renderers = {
            "text": self.to_text,
            "markdown": self.to_markdown,
            "csv": self.to_csv,
            "json": self.to_json,
        }
        try:
            return renderers[format]()
        except KeyError:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown report format {format!r}; known formats: {', '.join(sorted(renderers))}"
            ) from None
