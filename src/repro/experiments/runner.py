"""Sweep execution: expand, run (in parallel), cache, aggregate.

:class:`SweepRunner` drives a declarative sweep end to end:

1. the spec expands into content-addressed units
   (:mod:`repro.experiments.plan`);
2. units group by (workload, filter) so the cache-filtered trace — the
   expensive part of a cell — is generated **once per group**, and only for
   groups with at least one uncached cell;
3. groups run concurrently on the executor engine via
   :func:`repro.core.parallel.map_ordered` — threads by default (trace
   generation and the byte-level codecs release the GIL), or worker
   processes for true multi-core execution of the pure-Python cells;
4. each finished cell is written to the :class:`~repro.experiments.store.
   ResultStore`, so an interrupted sweep resumes from the completed cells
   and a repeated run completes near-instantly from cache;
5. the rows aggregate into a :class:`~repro.experiments.results.SweepResult`
   in grid order.

Example:
    >>> import tempfile
    >>> from repro.experiments.spec import loads_sweep_spec
    >>> spec = loads_sweep_spec(
    ...     '{"name": "tiny", "workloads": [{"name": "433.milc", "references": 4000}],'
    ...     ' "codecs": ["raw", "lossless"], "scale": {"small_buffer": 1000}}',
    ...     format="json")
    >>> runner = SweepRunner(spec, cache_dir=tempfile.mkdtemp())
    >>> first = runner.run()
    >>> [row.cached for row in first.rows]
    [False, False]
    >>> second = runner.run()   # second invocation: everything from cache
    >>> [row.cached for row in second.rows]
    [True, True]
    >>> first.rows[0].bits_per_address == second.rows[0].bits_per_address
    True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.parallel import executor_kind, map_ordered, resolve_workers
from repro.experiments.codecs import evaluate_codec, resolve_lossy_config
from repro.experiments.plan import ExperimentPlan, ExperimentUnit, default_code_version, expand_sweep
from repro.experiments.results import SweepResult, UnitResult
from repro.experiments.spec import FilterSpec, SweepSpec, WorkloadSpec
from repro.experiments.store import ResultStore

__all__ = ["SweepRunner", "SweepStatus", "run_sweep", "entry_is_complete", "row_from_entry"]

#: Keys a cache entry must carry to be usable; anything less reads as a miss
#: (same resilience contract as a corrupt entry — the cell is recomputed).
_REQUIRED_ENTRY_KEYS = ("addresses", "payload_bytes", "bits_per_address", "seconds")


def entry_is_complete(entry) -> bool:
    """Whether a store entry carries every required metric.

    The single completeness predicate shared by the runner's cache lookup
    and the distributed merge step, so "done iff the result exists (and is
    whole)" means the same thing everywhere.
    """
    return entry is not None and all(key in entry for key in _REQUIRED_ENTRY_KEYS)


def row_from_entry(unit: ExperimentUnit, entry: Dict, cached: bool) -> UnitResult:
    """Build one result row from a unit and its (computed or stored) entry.

    ``seconds`` is reported only for freshly computed cells — a cached
    cell's historical wall time is not this run's cost.
    """
    return UnitResult(
        workload=unit.workload.name,
        filter=unit.filter.name,
        codec=unit.codec.name,
        addresses=int(entry["addresses"]),
        payload_bytes=int(entry["payload_bytes"]),
        bits_per_address=float(entry["bits_per_address"]),
        seconds=0.0 if cached else float(entry["seconds"]),
        cached=cached,
        extra=dict(entry.get("extra") or {}),
    )


@dataclass(frozen=True)
class SweepStatus:
    """Cache occupancy of a sweep: how much of the grid is already done.

    Attributes:
        name: The sweep's name.
        total_units: Number of grid cells.
        completed_units: Cells with a stored result for the current code
            version.
        pending: Labels of the cells still to run, in grid order.
    """

    name: str
    total_units: int
    completed_units: int
    pending: Tuple[str, ...]

    @property
    def is_complete(self) -> bool:
        """True when every cell has a cached result."""
        return self.completed_units == self.total_units


class SweepRunner:
    """Executes a declarative sweep with caching and parallelism.

    Args:
        spec: The sweep to run.
        cache_dir: Result-store directory; ``None`` disables caching (every
            run recomputes every cell).
        workers: Number of (workload, filter) groups evaluated concurrently;
            ``0``/``None`` means one per CPU.
        executor: Execution strategy for the group fan-out: ``"serial"``,
            ``"thread"``, ``"process"`` (true multi-core; the spec, store
            path and group cells are shipped to worker interpreters), or
            ``None`` for the ``REPRO_EXECUTOR``/auto default.  A sweep with
            an in-process ``trace_provider`` closure cannot cross the
            process boundary, so process execution downgrades to threads in
            that case.  Results are identical for every strategy.
        code_version: Version string mixed into unit hashes; defaults to the
            package version, so upgrading the package invalidates the cache.
        trace_provider: Optional ``(workload, filter) -> array or None``
            callback consulted before generating a trace.  Lets a caller
            that already holds the cache-filtered traces (e.g. an
            :class:`~repro.analysis.harness.EvaluationHarness` with its
            per-workload trace cache) share them instead of paying
            generation + filtering twice; returning ``None`` falls back to
            generating.  The provider must return exactly the trace the
            runner would generate — it is a cache hook, not an override.
    """

    def __init__(
        self,
        spec: SweepSpec,
        cache_dir=None,
        workers: int = 1,
        executor=None,
        code_version: Optional[str] = None,
        trace_provider=None,
    ) -> None:
        self.spec = spec
        self.plan: ExperimentPlan = expand_sweep(spec)
        self.store: Optional[ResultStore] = ResultStore(cache_dir) if cache_dir is not None else None
        self.workers = resolve_workers(workers)
        self.executor = executor
        self.code_version = code_version if code_version is not None else default_code_version()
        self.trace_provider = trace_provider

    def _effective_executor(self):
        """The group-level executor, downgraded when state cannot cross.

        A ``trace_provider`` is an in-process cache hook (often a closure
        over a harness); shipping it to another interpreter is impossible,
        so an explicit process selection falls back to threads — same
        results, shared address space.
        """
        if self.trace_provider is not None and executor_kind(self.executor) == "process":
            return "thread"
        return self.executor

    # -- traces -----------------------------------------------------------------------
    def _filtered_trace(self, workload: WorkloadSpec, filter_spec: FilterSpec) -> np.ndarray:
        """Generate + filter one (workload, filter) trace (no caching: the
        result store holds final metrics, traces are deterministic)."""
        from repro.traces.filter import filtered_spec_like_trace

        if self.trace_provider is not None:
            provided = self.trace_provider(workload, filter_spec)
            if provided is not None:
                return np.asarray(provided, dtype=np.uint64)
        config = filter_spec.cache_config()
        trace = filtered_spec_like_trace(
            workload.name,
            int(workload.references),
            seed=int(workload.seed),
            instruction_config=config,
            data_config=config,
        )
        return trace.addresses

    # -- units ------------------------------------------------------------------------
    def _evaluate_unit(self, unit: ExperimentUnit, addresses: np.ndarray) -> Dict:
        started = time.perf_counter()
        measured = evaluate_codec(unit.codec, addresses, unit.scale)
        extra: Dict[str, float] = {}
        if unit.fidelity and unit.codec.kind == "lossy" and addresses.size:
            # Figure-3 style check: how far the lossy trace's miss-ratio
            # surface sits from the exact trace's.  Imported lazily to keep
            # experiments importable without the analysis layer.
            from repro.analysis.comparison import compare_miss_ratio_surfaces

            fidelity = compare_miss_ratio_surfaces(
                addresses,
                set_counts=tuple(unit.scale.set_counts),
                config=resolve_lossy_config(unit.codec, unit.scale),
                trace_name=unit.workload.name,
            )
            extra["max_miss_ratio_error"] = float(fidelity.max_miss_ratio_error)
        return {
            "addresses": int(addresses.size),
            "payload_bytes": int(measured["payload_bytes"]),
            "bits_per_address": float(measured["bits_per_address"]),
            "seconds": time.perf_counter() - started,
            "extra": extra,
            "unit": unit.to_dict(),
        }

    def _run_group(
        self, group: Tuple[Tuple[WorkloadSpec, FilterSpec], Tuple[ExperimentUnit, ...]]
    ) -> List[UnitResult]:
        (workload, filter_spec), units = group
        cached: Dict[str, Dict] = {}
        missing: List[ExperimentUnit] = []
        for unit in units:
            entry = self.store.get(unit.unit_hash(self.code_version)) if self.store else None
            if entry_is_complete(entry):
                cached[unit.label] = entry
            else:
                missing.append(unit)
        addresses = self._filtered_trace(workload, filter_spec) if missing else None
        rows: List[UnitResult] = []
        for unit in units:
            if unit.label in cached:
                entry, was_cached = cached[unit.label], True
            else:
                entry, was_cached = self._evaluate_unit(unit, addresses), False
                if self.store is not None:
                    self.store.put(unit.unit_hash(self.code_version), entry)
            rows.append(row_from_entry(unit, entry, was_cached))
        return rows

    # -- public API -------------------------------------------------------------------
    def run(self) -> SweepResult:
        """Run (or resume) the sweep and return every cell's result.

        Groups with every cell cached never regenerate their trace; groups
        run concurrently when ``workers > 1``; rows come back in grid order
        regardless of scheduling.
        """
        groups = self.plan.groups()
        per_group = map_ordered(
            self._run_group, groups, workers=self.workers, executor=self._effective_executor()
        )
        by_label = {row_unit.label: row
                    for group_rows, (_, units) in zip(per_group, groups)
                    for row, row_unit in zip(group_rows, units)}
        ordered = tuple(by_label[unit.label] for unit in self.plan.units)
        return SweepResult(name=self.spec.name, rows=ordered)

    def status(self) -> SweepStatus:
        """How much of the grid the result store already holds."""
        pending = tuple(
            unit.label
            for unit in self.plan.units
            if self.store is None or unit.unit_hash(self.code_version) not in self.store
        )
        total = len(self.plan.units)
        return SweepStatus(
            name=self.spec.name,
            total_units=total,
            completed_units=total - len(pending),
            pending=pending,
        )


def run_sweep(spec: SweepSpec, cache_dir=None, workers: int = 1, executor=None) -> SweepResult:
    """One-shot convenience: run a sweep spec and return its result."""
    return SweepRunner(spec, cache_dir=cache_dir, workers=workers, executor=executor).run()
