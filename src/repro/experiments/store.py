"""On-disk result cache for sweep units, keyed by content hash.

A :class:`ResultStore` is a directory of ``<sha256>.json`` files, one per
completed grid cell.  The hash covers the resolved unit parameters *and* the
code version (see :meth:`~repro.experiments.plan.ExperimentUnit.unit_hash`),
so a stored result is returned only when both the cell and the code that
produced it are unchanged — re-running a sweep skips completed cells, a
resumed sweep picks up exactly where it stopped, and editing a parameter
invalidates exactly the affected cells.

Entries are small JSON documents (the measured metrics plus the unit's own
description for human inspection), so the cache is diff-able and safe to
prune by hand.

Example:
    >>> import tempfile
    >>> store = ResultStore(tempfile.mkdtemp())
    >>> key = "ab" * 32
    >>> store.get(key) is None
    True
    >>> store.put(key, {"bits_per_address": 1.5})
    >>> store.get(key)["bits_per_address"]
    1.5
    >>> store.size()
    1
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = ["ResultStore"]

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")

#: Temp files older than this are considered crash debris by
#: :meth:`ResultStore.prune_tmp` (a live writer holds its temp file for
#: milliseconds, so an hour is conservative by orders of magnitude).
DEFAULT_TMP_MAX_AGE = 3600.0

_tmp_counter = itertools.count()


class ResultStore:
    """Directory-backed ``{unit_hash: result_dict}`` mapping.

    Args:
        directory: Cache directory; created on first write.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    def _path(self, unit_hash: str) -> Path:
        if not _HASH_RE.match(unit_hash):
            raise ConfigurationError(f"malformed unit hash {unit_hash!r}")
        return self.directory / f"{unit_hash}.json"

    def get(self, unit_hash: str) -> Optional[Dict]:
        """Return the stored result for a hash, or ``None`` when absent.

        A corrupt (half-written, hand-edited) entry reads as a miss, so the
        unit is simply recomputed rather than crashing the sweep.
        """
        path = self._path(unit_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            return None
        return data if isinstance(data, dict) else None

    def put(self, unit_hash: str, result: Dict) -> None:
        """Store one result; the write is atomic (rename of a temp file).

        The temp name is unique per process, thread and call: concurrent
        writers of the *same* hash (two workers finishing one stolen unit
        at the same moment) each rename their own complete temp file onto
        the destination, so the store always holds one valid entry — the
        last rename wins — and no writer can trip over another's temp file.
        """
        path = self._path(unit_hash)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.directory / (
            f"{unit_hash}.{os.getpid()}.{threading.get_ident()}.{next(_tmp_counter)}.tmp"
        )
        tmp.write_text(json.dumps(result, sort_keys=True, indent=1), encoding="utf-8")
        tmp.replace(path)

    def __contains__(self, unit_hash: str) -> bool:
        return self._path(unit_hash).exists()

    def keys(self) -> List[str]:
        """Hashes of every stored result, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(
            path.stem for path in self.directory.glob("*.json") if _HASH_RE.match(path.stem)
        )

    def size(self) -> int:
        """Number of stored results."""
        return len(self.keys())

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        removed = 0
        for key in self.keys():
            self._path(key).unlink()
            removed += 1
        return removed

    def tmp_files(self) -> List[Path]:
        """Leftover ``*.tmp`` files (crash debris from interrupted writes)."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.tmp"))

    def prune_tmp(self, max_age_seconds: float = DEFAULT_TMP_MAX_AGE) -> int:
        """Remove temp files older than ``max_age_seconds``; returns the count.

        A crashed writer leaves its (uniquely named) temp file behind; a
        *live* writer holds one only for the instant between write and
        rename.  The age guard keeps pruning safe to run concurrently with
        active workers — pass ``0`` only when no worker can be writing.
        """
        removed = 0
        now = time.time()
        for tmp in self.tmp_files():
            try:
                if now - tmp.stat().st_mtime >= max_age_seconds:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue  # already gone, or racing a writer: both fine
        return removed
