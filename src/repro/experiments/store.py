"""On-disk result cache for sweep units, keyed by content hash.

A :class:`ResultStore` is a directory of ``<sha256>.json`` files, one per
completed grid cell.  The hash covers the resolved unit parameters *and* the
code version (see :meth:`~repro.experiments.plan.ExperimentUnit.unit_hash`),
so a stored result is returned only when both the cell and the code that
produced it are unchanged — re-running a sweep skips completed cells, a
resumed sweep picks up exactly where it stopped, and editing a parameter
invalidates exactly the affected cells.

Entries are small JSON documents (the measured metrics plus the unit's own
description for human inspection), so the cache is diff-able and safe to
prune by hand.

Example:
    >>> import tempfile
    >>> store = ResultStore(tempfile.mkdtemp())
    >>> key = "ab" * 32
    >>> store.get(key) is None
    True
    >>> store.put(key, {"bits_per_address": 1.5})
    >>> store.get(key)["bits_per_address"]
    1.5
    >>> store.size()
    1
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.integrity import ENTRY_DIGEST_KEY, json_digest
from repro.errors import ConfigurationError

__all__ = ["ResultStore", "DURABLE_FSYNC_ENV", "durable_fsync_enabled", "fsync_directory"]

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")

#: Temp files older than this are considered crash debris by
#: :meth:`ResultStore.prune_tmp` (a live writer holds its temp file for
#: milliseconds, so an hour is conservative by orders of magnitude).
DEFAULT_TMP_MAX_AGE = 3600.0

#: Environment variable enabling fsync-on-commit for every durable store
#: (``ResultStore.put`` and the service cache commit).  Off by default:
#: atomic rename alone keeps the store *consistent* (an entry is either
#: old, new, or absent), but after a power loss a rename can survive while
#: the renamed file's *data* did not reach disk — a renamed-but-empty
#: entry.  Set to ``1`` to pay one fsync of the file and one of its
#: directory per commit and close that window.
DURABLE_FSYNC_ENV = "REPRO_DURABLE_FSYNC"

_tmp_counter = itertools.count()


def durable_fsync_enabled() -> bool:
    """True when :data:`DURABLE_FSYNC_ENV` requests fsync-on-commit."""
    return os.environ.get(DURABLE_FSYNC_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def fsync_directory(directory) -> None:
    """fsync a directory so a completed rename inside it is durable."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ResultStore:
    """Directory-backed ``{unit_hash: result_dict}`` mapping.

    Args:
        directory: Cache directory; created on first write.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self._eviction_lock = threading.Lock()
        #: Entries quarantined by this store instance after failing their
        #: integrity check on read (each one was renamed aside, counted,
        #: and reported as a miss so the unit is recomputed).
        self.integrity_evictions = 0

    def _path(self, unit_hash: str) -> Path:
        if not _HASH_RE.match(unit_hash):
            raise ConfigurationError(f"malformed unit hash {unit_hash!r}")
        return self.directory / f"{unit_hash}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a failed entry aside (``<hash>.json.quarantine``) and count it.

        Renaming — not deleting — preserves the bad bytes for post-mortem
        (``repro fsck`` reports them) while guaranteeing the entry can
        never be served again; the next ``get`` is a clean miss.
        """
        try:
            path.replace(path.with_name(path.name + ".quarantine"))
        except OSError:
            # Racing another reader's quarantine (or the file vanished):
            # either way it is no longer servable, which is what matters.
            pass
        with self._eviction_lock:
            self.integrity_evictions += 1

    def get(self, unit_hash: str) -> Optional[Dict]:
        """Return the stored result for a hash, or ``None`` when absent.

        Every entry written since the integrity layer embeds its own digest
        (:data:`ENTRY_DIGEST_KEY`); an entry that fails to parse or fails
        its digest check is *quarantined* — renamed aside and counted in
        :attr:`integrity_evictions` — and reads as a miss, so the unit is
        recomputed rather than a corrupt result poisoning the sweep.
        Legacy digest-less entries are returned as-is.
        """
        path = self._path(unit_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        if not isinstance(data, dict):
            self._quarantine(path)
            return None
        expected = data.pop(ENTRY_DIGEST_KEY, None)
        if expected is not None and json_digest(data) != expected:
            self._quarantine(path)
            return None
        return data

    def put(self, unit_hash: str, result: Dict) -> None:
        """Store one result; the write is atomic (rename of a temp file).

        The temp name is unique per process, thread and call: concurrent
        writers of the *same* hash (two workers finishing one stolen unit
        at the same moment) each rename their own complete temp file onto
        the destination, so the store always holds one valid entry — the
        last rename wins — and no writer can trip over another's temp file.

        The entry embeds a digest over itself (:data:`ENTRY_DIGEST_KEY`)
        so later reads can detect corruption, and with
        :data:`DURABLE_FSYNC_ENV` set the file and directory are fsynced
        so a crash right after ``put`` cannot leave a renamed-but-empty
        entry.
        """
        path = self._path(unit_hash)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.directory / (
            f"{unit_hash}.{os.getpid()}.{threading.get_ident()}.{next(_tmp_counter)}.tmp"
        )
        # Round-trip through JSON first so the digest is computed over
        # exactly what a later read will re-parse (tuples become lists,
        # NaN-free floats normalise, key order is canonicalised).
        payload = json.loads(json.dumps(result, sort_keys=True))
        payload[ENTRY_DIGEST_KEY] = json_digest(
            {key: value for key, value in payload.items() if key != ENTRY_DIGEST_KEY}
        )
        text = json.dumps(payload, sort_keys=True, indent=1)
        if durable_fsync_enabled():
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(path)
            fsync_directory(self.directory)
        else:
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(path)

    def __contains__(self, unit_hash: str) -> bool:
        """True when a *valid* entry exists for the hash.

        Goes through :meth:`get` rather than a bare ``exists()`` so that a
        corrupt entry reads as absent (and is quarantined on the spot) —
        this is what makes a distributed sweep *re-run* a unit whose
        stored result was damaged, instead of counting it complete and
        merging a hole.
        """
        return self.get(unit_hash) is not None

    def keys(self) -> List[str]:
        """Hashes of every stored result, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(
            path.stem for path in self.directory.glob("*.json") if _HASH_RE.match(path.stem)
        )

    def size(self) -> int:
        """Number of stored results."""
        return len(self.keys())

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        removed = 0
        for key in self.keys():
            self._path(key).unlink()
            removed += 1
        return removed

    def tmp_files(self) -> List[Path]:
        """Leftover ``*.tmp`` files (crash debris from interrupted writes)."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.tmp"))

    def quarantine_files(self) -> List[Path]:
        """Entries quarantined after failing their integrity check on read.

        Kept on disk for post-mortem; safe to delete once inspected (they
        are never read as results again).
        """
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.quarantine"))

    def prune_tmp(self, max_age_seconds: float = DEFAULT_TMP_MAX_AGE) -> int:
        """Remove temp files older than ``max_age_seconds``; returns the count.

        A crashed writer leaves its (uniquely named) temp file behind; a
        *live* writer holds one only for the instant between write and
        rename.  The age guard keeps pruning safe to run concurrently with
        active workers — pass ``0`` only when no worker can be writing.
        """
        removed = 0
        now = time.time()
        for tmp in self.tmp_files():
            try:
                if now - tmp.stat().st_mtime >= max_age_seconds:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue  # already gone, or racing a writer: both fine
        return removed
