"""On-disk result cache for sweep units, keyed by content hash.

A :class:`ResultStore` is a directory of ``<sha256>.json`` files, one per
completed grid cell.  The hash covers the resolved unit parameters *and* the
code version (see :meth:`~repro.experiments.plan.ExperimentUnit.unit_hash`),
so a stored result is returned only when both the cell and the code that
produced it are unchanged — re-running a sweep skips completed cells, a
resumed sweep picks up exactly where it stopped, and editing a parameter
invalidates exactly the affected cells.

Entries are small JSON documents (the measured metrics plus the unit's own
description for human inspection), so the cache is diff-able and safe to
prune by hand.

Example:
    >>> import tempfile
    >>> store = ResultStore(tempfile.mkdtemp())
    >>> key = "ab" * 32
    >>> store.get(key) is None
    True
    >>> store.put(key, {"bits_per_address": 1.5})
    >>> store.get(key)["bits_per_address"]
    1.5
    >>> store.size()
    1
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = ["ResultStore"]

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")


class ResultStore:
    """Directory-backed ``{unit_hash: result_dict}`` mapping.

    Args:
        directory: Cache directory; created on first write.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    def _path(self, unit_hash: str) -> Path:
        if not _HASH_RE.match(unit_hash):
            raise ConfigurationError(f"malformed unit hash {unit_hash!r}")
        return self.directory / f"{unit_hash}.json"

    def get(self, unit_hash: str) -> Optional[Dict]:
        """Return the stored result for a hash, or ``None`` when absent.

        A corrupt (half-written, hand-edited) entry reads as a miss, so the
        unit is simply recomputed rather than crashing the sweep.
        """
        path = self._path(unit_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            return None
        return data if isinstance(data, dict) else None

    def put(self, unit_hash: str, result: Dict) -> None:
        """Store one result; the write is atomic (rename of a temp file)."""
        path = self._path(unit_hash)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(result, sort_keys=True, indent=1), encoding="utf-8")
        tmp.replace(path)

    def __contains__(self, unit_hash: str) -> bool:
        return self._path(unit_hash).exists()

    def keys(self) -> List[str]:
        """Hashes of every stored result, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(
            path.stem for path in self.directory.glob("*.json") if _HASH_RE.match(path.stem)
        )

    def size(self) -> int:
        """Number of stored results."""
        return len(self.keys())

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        removed = 0
        for key in self.keys():
            self._path(key).unlink()
            removed += 1
        return removed
