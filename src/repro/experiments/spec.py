"""Declarative experiment specifications (the input of a sweep).

A sweep is declared as a small tree of frozen dataclasses — *what* to run,
never *how*:

* :class:`WorkloadSpec` — one synthetic workload (name, reference count,
  seed);
* :class:`FilterSpec` — one L1 filter-cache geometry (the paper's 32 KB
  4-way configuration is the default);
* :class:`CodecSpec` — one compressor cell: a codec kind (``raw``,
  ``unshuffle``, ``delta``, ``vpc``, ``lossless``, ``lossy``) plus its
  parameters;
* :class:`EvaluationScale` — the shared scale knobs every cell inherits
  unless its codec overrides them;
* :class:`SweepSpec` — the cartesian grid ``workloads x filters x codecs``
  under one scale.

Specs are plain data: they load from TOML or JSON files
(:func:`load_sweep_spec`), round-trip through dictionaries
(:func:`sweep_spec_from_dict` / :meth:`SweepSpec.to_dict`) and contain
everything needed to compute a reproducible content hash per grid cell (see
:mod:`repro.experiments.plan`).

Example:
    >>> from repro.experiments.spec import sweep_spec_from_dict
    >>> spec = sweep_spec_from_dict({
    ...     "name": "demo",
    ...     "workloads": [{"name": "429.mcf"}, {"name": "462.libquantum"}],
    ...     "codecs": [{"kind": "lossless"}, {"kind": "lossy"}],
    ...     "scale": {"references_per_workload": 5000},
    ... })
    >>> [w.name for w in spec.workloads]
    ['429.mcf', '462.libquantum']
    >>> len(spec.filters)  # the paper's L1 geometry is implied
    1
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.cache import CacheConfig
from repro.core.backend import get_backend
from repro.core.lossy import LossyConfig
from repro.errors import ConfigurationError

__all__ = [
    "EvaluationScale",
    "WorkloadSpec",
    "FilterSpec",
    "CodecSpec",
    "SweepSpec",
    "CODEC_KINDS",
    "load_sweep_spec",
    "loads_sweep_spec",
    "sweep_spec_from_dict",
]

#: Codec kinds a :class:`CodecSpec` may name, in Table 1/3 column order.
CODEC_KINDS: Tuple[str, ...] = ("raw", "unshuffle", "delta", "vpc", "lossless", "lossy")


@dataclass(frozen=True)
class EvaluationScale:
    """Scale knobs shared by every experiment (see ``benchmarks/conftest.py``).

    Attributes:
        references_per_workload: References generated before cache filtering.
        small_buffer: Bytesort buffer standing in for the paper's 1 M.
        big_buffer: Bytesort buffer standing in for the paper's 10 M.
        interval_length: Lossy interval length standing in for 10 M.
        threshold: Lossy threshold (paper: 0.1).
        set_counts: Cache set counts for the miss-ratio sweeps.
        seed: Workload generation seed.

    Example:
        >>> EvaluationScale(references_per_workload=5000).lossy_config().interval_length
        5000
    """

    references_per_workload: int = 30_000
    small_buffer: int = 4_000
    big_buffer: int = 64_000
    interval_length: int = 5_000
    threshold: float = 0.1
    set_counts: Sequence[int] = (64, 256, 1024)
    seed: int = 0

    def lossy_config(self, enable_translation: bool = True) -> LossyConfig:
        """The lossy configuration implied by the scale."""
        return LossyConfig(
            interval_length=self.interval_length,
            threshold=self.threshold,
            chunk_buffer_addresses=self.small_buffer,
            enable_translation=enable_translation,
        )

    def to_dict(self) -> Dict:
        """Plain-data form (JSON/TOML friendly)."""
        return {
            "references_per_workload": self.references_per_workload,
            "small_buffer": self.small_buffer,
            "big_buffer": self.big_buffer,
            "interval_length": self.interval_length,
            "threshold": self.threshold,
            "set_counts": list(self.set_counts),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EvaluationScale":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        data = dict(data)
        set_counts = data.pop("set_counts", None)
        known = {f: data.pop(f) for f in (
            "references_per_workload", "small_buffer", "big_buffer",
            "interval_length", "threshold", "seed",
        ) if f in data}
        if data:
            raise ConfigurationError(f"unknown scale keys: {sorted(data)}")
        if set_counts is not None:
            known["set_counts"] = tuple(int(count) for count in set_counts)
        return cls(**known)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload cell of the grid.

    Attributes:
        name: Spec-like workload name (``"429.mcf"`` or ``"429"``).
        references: Reference count before filtering; ``None`` inherits
            ``scale.references_per_workload``.
        seed: Workload RNG seed; ``None`` inherits ``scale.seed``.

    Example:
        >>> WorkloadSpec("429.mcf").to_dict()
        {'name': '429.mcf'}
    """

    name: str
    references: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload name must be non-empty")
        if self.references is not None and self.references <= 0:
            raise ConfigurationError("workload references must be positive")

    def resolve(self, scale: EvaluationScale) -> "WorkloadSpec":
        """Fill ``None`` fields from the sweep scale."""
        return WorkloadSpec(
            name=self.name,
            references=self.references if self.references is not None else scale.references_per_workload,
            seed=self.seed if self.seed is not None else scale.seed,
        )

    def to_dict(self) -> Dict:
        """Plain-data form, omitting inherited (``None``) fields."""
        out: Dict = {"name": self.name}
        if self.references is not None:
            out["references"] = self.references
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data) -> "WorkloadSpec":
        """Build from a mapping or a bare name string."""
        if isinstance(data, str):
            return cls(name=data)
        data = dict(data)
        _reject_unknown_keys(data, ("name", "references", "seed"), "workload")
        return cls(**data)


@dataclass(frozen=True)
class FilterSpec:
    """One L1 filter-cache geometry (both the I- and the D-cache).

    The default is the paper's Section 4.2 filter: 32 KB, 4-way, 64-byte
    blocks, LRU.

    Attributes:
        label: Row label in reports; auto-derived when empty.
        capacity_bytes: Total capacity of each filter cache.
        associativity: Ways per set.
        block_bytes: Cache block size in bytes.
        policy: Replacement policy (``"lru"``, ``"fifo"``, ``"random"``).

    Example:
        >>> FilterSpec().name
        'l1-32KB-4w'
        >>> FilterSpec(capacity_bytes=16384, associativity=2).cache_config().num_sets
        128
    """

    label: str = ""
    capacity_bytes: int = 32 * 1024
    associativity: int = 4
    block_bytes: int = 64
    policy: str = "lru"

    def __post_init__(self) -> None:
        # Validate eagerly: a bad geometry should fail at spec-load time,
        # not halfway through a sweep.
        self.cache_config()

    @property
    def name(self) -> str:
        """The report label (explicit, or derived from the geometry)."""
        if self.label:
            return self.label
        return f"l1-{self.capacity_bytes // 1024}KB-{self.associativity}w"

    def cache_config(self) -> CacheConfig:
        """The :class:`~repro.cache.cache.CacheConfig` this spec describes."""
        return CacheConfig.from_capacity(
            capacity_bytes=self.capacity_bytes,
            associativity=self.associativity,
            block_bytes=self.block_bytes,
            policy=self.policy,
            name=self.name,
        )

    def to_dict(self) -> Dict:
        """Plain-data form."""
        out: Dict = {
            "capacity_bytes": self.capacity_bytes,
            "associativity": self.associativity,
            "block_bytes": self.block_bytes,
            "policy": self.policy,
        }
        if self.label:
            out["label"] = self.label
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FilterSpec":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        _reject_unknown_keys(
            data, ("label", "capacity_bytes", "associativity", "block_bytes", "policy"), "filter"
        )
        return cls(**data)


@dataclass(frozen=True)
class CodecSpec:
    """One compressor cell of the grid.

    Attributes:
        kind: Codec kind, one of :data:`CODEC_KINDS`.
        label: Column label in reports; defaults to the kind (or
            ``kind@backend`` for non-default back-ends).
        backend: Byte-level back-end name (``bz2``, ``zlib``/``gz``,
            ``lzma``/``xz``, ``store``).
        buffer_addresses: Bytesort buffer for ``unshuffle``/``lossless``/
            ``lossy`` chunks; ``None`` inherits ``scale.small_buffer``.
        interval_length: Lossy interval length; ``None`` inherits the scale.
        threshold: Lossy threshold; ``None`` inherits the scale.
        enable_translation: Lossy byte translation (Figure 4 ablation knob).

    Example:
        >>> CodecSpec(kind="lossless", backend="zlib").name
        'lossless@zlib'
        >>> CodecSpec(kind="lossy").name
        'lossy'
    """

    kind: str
    label: str = ""
    backend: str = "bz2"
    buffer_addresses: Optional[int] = None
    interval_length: Optional[int] = None
    threshold: Optional[float] = None
    enable_translation: bool = True

    def __post_init__(self) -> None:
        if self.kind not in CODEC_KINDS:
            raise ConfigurationError(
                f"unknown codec kind {self.kind!r}; known kinds: {', '.join(CODEC_KINDS)}"
            )
        get_backend(self.backend)  # fail at spec-load time on bad names
        if self.buffer_addresses is not None and self.buffer_addresses <= 0:
            raise ConfigurationError("codec buffer_addresses must be positive")
        if self.interval_length is not None and self.interval_length <= 0:
            raise ConfigurationError("codec interval_length must be positive")

    @property
    def name(self) -> str:
        """The report label (explicit, or derived from kind and back-end)."""
        if self.label:
            return self.label
        if self.backend != "bz2":
            return f"{self.kind}@{self.backend}"
        return self.kind

    def to_dict(self) -> Dict:
        """Plain-data form, omitting inherited (``None``) fields."""
        out: Dict = {"kind": self.kind}
        if self.label:
            out["label"] = self.label
        if self.backend != "bz2":
            out["backend"] = self.backend
        for key in ("buffer_addresses", "interval_length", "threshold"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if not self.enable_translation:
            out["enable_translation"] = False
        return out

    @classmethod
    def from_dict(cls, data) -> "CodecSpec":
        """Build from a mapping or a bare kind string."""
        if isinstance(data, str):
            return cls(kind=data)
        data = dict(data)
        _reject_unknown_keys(
            data,
            ("kind", "label", "backend", "buffer_addresses", "interval_length",
             "threshold", "enable_translation"),
            "codec",
        )
        return cls(**data)

    def resolved_params(self, scale: "EvaluationScale") -> Dict:
        """The result-affecting parameters of this cell, scale-resolved.

        This is the codec part of the unit content hash: only fields the
        codec kind actually consumes are included (a ``raw`` cell's hash
        does not change when the bytesort buffer default changes), scale
        inheritance is applied (an explicit parameter and an inherited one
        of equal value hash identically), and cosmetic fields (``label``)
        are excluded.
        """
        params: Dict = {"kind": self.kind}
        if self.kind != "vpc":  # the VPC codec has no byte-level back-end
            # Canonical name, so alias spellings ("gz" vs "zlib", "xz" vs
            # "lzma") of the same back-end share cache entries.
            params["backend"] = get_backend(self.backend).name
        if self.kind in ("unshuffle", "lossless", "lossy"):
            params["buffer_addresses"] = (
                self.buffer_addresses if self.buffer_addresses is not None else scale.small_buffer
            )
        if self.kind == "lossy":
            params["interval_length"] = (
                self.interval_length if self.interval_length is not None else scale.interval_length
            )
            params["threshold"] = self.threshold if self.threshold is not None else scale.threshold
            params["enable_translation"] = self.enable_translation
        return params


@dataclass(frozen=True)
class SweepSpec:
    """A full sweep: the grid ``workloads x filters x codecs`` at one scale.

    Attributes:
        name: Sweep name (used in reports and cache metadata).
        workloads: Workload cells (at least one).
        filters: Filter-cache cells; defaults to the paper's L1 geometry.
        codecs: Codec cells (at least one).
        scale: Shared scale knobs inherited by every cell.
        fidelity: When true, lossy cells additionally record the Figure-3
            max miss-ratio error against the exact trace.
    """

    name: str
    workloads: Tuple[WorkloadSpec, ...]
    codecs: Tuple[CodecSpec, ...]
    filters: Tuple[FilterSpec, ...] = (FilterSpec(),)
    scale: EvaluationScale = field(default_factory=EvaluationScale)
    fidelity: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sweep name must be non-empty")
        if not self.workloads:
            raise ConfigurationError("a sweep needs at least one workload")
        if not self.codecs:
            raise ConfigurationError("a sweep needs at least one codec")
        if not self.filters:
            raise ConfigurationError("a sweep needs at least one filter")
        for collection, what in ((self.workloads, "workload"), (self.filters, "filter"),
                                 (self.codecs, "codec")):
            labels = [cell.name for cell in collection]
            if len(set(labels)) != len(labels):
                raise ConfigurationError(f"duplicate {what} labels in sweep: {sorted(labels)}")

    @property
    def num_units(self) -> int:
        """Number of grid cells the sweep expands into."""
        return len(self.workloads) * len(self.filters) * len(self.codecs)

    def to_dict(self) -> Dict:
        """Plain-data form (the on-disk TOML/JSON schema)."""
        return {
            "name": self.name,
            "workloads": [w.to_dict() for w in self.workloads],
            "filters": [f.to_dict() for f in self.filters],
            "codecs": [c.to_dict() for c in self.codecs],
            "scale": self.scale.to_dict(),
            "fidelity": self.fidelity,
        }


def _reject_unknown_keys(data: Dict, known: Sequence[str], what: str) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ConfigurationError(f"unknown {what} keys: {unknown}")


def sweep_spec_from_dict(data: Dict) -> SweepSpec:
    """Build a :class:`SweepSpec` from its plain-data form.

    This is the single schema shared by the TOML and JSON loaders; see the
    module docstring for an example.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(f"a sweep spec must be a mapping, got {type(data).__name__}")
    data = dict(data)
    _reject_unknown_keys(
        data, ("name", "workloads", "filters", "codecs", "scale", "fidelity"), "sweep"
    )
    try:
        workloads = tuple(WorkloadSpec.from_dict(w) for w in data.get("workloads", ()))
        codecs = tuple(CodecSpec.from_dict(c) for c in data.get("codecs", ()))
        filters_data: Optional[List] = data.get("filters")
        filters = (
            tuple(FilterSpec.from_dict(f) for f in filters_data)
            if filters_data
            else (FilterSpec(),)
        )
        scale = EvaluationScale.from_dict(data.get("scale", {}))
    except TypeError as error:
        raise ConfigurationError(f"malformed sweep spec: {error}") from None
    return SweepSpec(
        name=str(data.get("name", "")),
        workloads=workloads,
        filters=filters,
        codecs=codecs,
        scale=scale,
        fidelity=bool(data.get("fidelity", False)),
    )


def _parse_toml(text: str) -> Dict:
    try:
        import tomllib  # Python >= 3.11
    except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            raise ConfigurationError(
                "TOML sweep specs need Python >= 3.11 (tomllib) or the 'tomli' "
                "package; use a JSON spec instead"
            ) from None
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ConfigurationError(f"invalid TOML sweep spec: {error}") from None


def _parse_text(text: str, format: str) -> Dict:
    if format == "toml":
        return _parse_toml(text)
    if format == "json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid JSON sweep spec: {error}") from None
    raise ConfigurationError(f"unknown sweep spec format {format!r} (use 'toml' or 'json')")


def loads_sweep_spec(text: str, format: str = "toml") -> SweepSpec:
    """Parse a sweep spec from a TOML or JSON string.

    Example:
        >>> spec = loads_sweep_spec(
        ...     '{"name": "s", "workloads": ["429.mcf"], "codecs": ["lossless"]}',
        ...     format="json")
        >>> spec.num_units
        1
    """
    return sweep_spec_from_dict(_parse_text(text, format))


def load_sweep_spec(path) -> SweepSpec:
    """Load a sweep spec file; the format follows the file extension.

    ``.toml`` parses as TOML (Python >= 3.11 or with ``tomli`` installed),
    anything else as JSON.  A spec without a ``name`` key is named after the
    file stem.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot read sweep spec {path}: {error}") from None
    format = "toml" if path.suffix.lower() == ".toml" else "json"
    data = _parse_text(text, format)
    if isinstance(data, dict):
        data.setdefault("name", path.stem)
    return sweep_spec_from_dict(data)
