"""Codec-cell evaluation: one resolved codec spec applied to one trace.

:func:`evaluate_codec` is the single implementation behind both the
declarative sweep runner and :class:`~repro.analysis.harness.
EvaluationHarness`'s hand-driven Table 1/3 comparisons — the harness builds
:class:`~repro.experiments.spec.CodecSpec` cells and calls this function, so
a spec-driven sweep and the harness produce identical numbers by
construction.

Every kind reports the same two measurements: the compressed payload size in
bytes and the resulting bits per address.  The payload definitions match the
paper's tables:

* ``raw`` — the 8-byte-per-address representation through the back-end
  alone (Table 1's "bz2" column);
* ``unshuffle`` — byte-unshuffled then back-end compressed (Table 1 "us");
* ``delta`` — zigzag delta coded then back-end compressed (related work);
* ``vpc`` — the VPC/TCgen-style predictor compressor (Table 1 "tcg");
* ``lossless`` — bytesort + back-end, the paper's lossless ATC (Table 1
  "bs" columns; the buffer size selects small vs big);
* ``lossy`` — the phase-based lossy ATC codec (Table 3 "lossy"), counting
  chunk payloads plus the compressed interval trace like the container.

Example:
    >>> import numpy as np
    >>> from repro.experiments.spec import CodecSpec, EvaluationScale
    >>> addresses = np.arange(4000, dtype=np.uint64) % 257
    >>> result = evaluate_codec(CodecSpec(kind="lossless"), addresses, EvaluationScale())
    >>> sorted(result)
    ['bits_per_address', 'payload_bytes']
    >>> result["payload_bytes"] > 0
    True
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.lossless import LosslessCodec
from repro.core.lossy import LossyCodec, LossyConfig
from repro.errors import ConfigurationError
from repro.experiments.spec import CodecSpec, EvaluationScale

__all__ = ["evaluate_codec", "resolve_lossy_config"]


def resolve_lossy_config(codec: CodecSpec, scale: EvaluationScale) -> LossyConfig:
    """The :class:`~repro.core.lossy.LossyConfig` of a ``lossy`` cell.

    Codec fields override the scale; unset fields inherit
    ``scale.interval_length`` / ``scale.threshold`` / ``scale.small_buffer``.
    """
    return LossyConfig(
        interval_length=(
            codec.interval_length if codec.interval_length is not None else scale.interval_length
        ),
        threshold=codec.threshold if codec.threshold is not None else scale.threshold,
        chunk_buffer_addresses=(
            codec.buffer_addresses if codec.buffer_addresses is not None else scale.small_buffer
        ),
        backend=codec.backend,
        enable_translation=codec.enable_translation,
    )


def _payload_bytes(codec: CodecSpec, addresses: np.ndarray, scale: EvaluationScale) -> int:
    buffer_addresses = (
        codec.buffer_addresses if codec.buffer_addresses is not None else scale.small_buffer
    )
    if codec.kind == "raw":
        from repro.baselines.generic import compress_raw

        return len(compress_raw(addresses, backend=codec.backend))
    if codec.kind == "unshuffle":
        from repro.baselines.unshuffle import compress_unshuffled

        return len(compress_unshuffled(addresses, buffer_addresses, backend=codec.backend))
    if codec.kind == "delta":
        from repro.baselines.delta import compress_delta

        return len(compress_delta(addresses, backend=codec.backend))
    if codec.kind == "vpc":
        from repro.predictors.vpc import VpcCodec

        return len(VpcCodec().compress(addresses))
    if codec.kind == "lossless":
        return len(LosslessCodec(buffer_addresses, backend=codec.backend).compress(addresses))
    if codec.kind == "lossy":
        compressed = LossyCodec(resolve_lossy_config(codec, scale)).compress(addresses)
        return compressed.compressed_bytes()
    raise ConfigurationError(f"unknown codec kind {codec.kind!r}")  # pragma: no cover


def evaluate_codec(
    codec: CodecSpec, addresses, scale: Optional[EvaluationScale] = None
) -> Dict[str, float]:
    """Measure one codec cell on one (already filtered) address trace.

    Args:
        codec: The codec cell to evaluate.
        addresses: The cache-filtered trace (any ``uint64`` array-like).
        scale: Scale defaults for parameters the codec leaves unset.

    Returns:
        ``{"payload_bytes": int, "bits_per_address": float}``.
    """
    from repro.traces.trace import as_address_array

    scale = scale if scale is not None else EvaluationScale()
    values = as_address_array(addresses)
    if values.size == 0:
        return {"payload_bytes": 0, "bits_per_address": 0.0}
    payload = _payload_bytes(codec, values, scale)
    return {
        "payload_bytes": int(payload),
        "bits_per_address": 8.0 * payload / int(values.size),
    }
