"""Distributed, resumable sweeps: sharding, lease/steal, merge.

One sweep, N independent worker processes (or hosts sharing a filesystem),
no coordinator.  The whole protocol rests on two facts the rest of the
experiments subsystem already guarantees:

* every grid cell is **content-addressed** (:meth:`~repro.experiments.plan.
  ExperimentUnit.unit_hash` covers the resolved parameters and the code
  version), and
* the :class:`~repro.experiments.store.ResultStore` write is an **atomic
  rename**, so a result file either exists completely or not at all.

Therefore *a unit is done iff its result file exists* — the store is the
single source of truth, and resuming after any crash is simply running the
same spec against the same cache directory again.  On top of that this
module provides:

* **Deterministic sharding** — shard ``i`` of ``N`` (1-based) owns the
  units with ``int(unit_hash, 16) % N == i - 1``; every worker computes
  the same disjoint, exhaustive partition with no communication
  (:meth:`~repro.experiments.plan.ExperimentPlan.shard_units`).
* **Lease files for work stealing** — a worker evaluating a unit holds
  ``<hash>.lease`` next to the result store (JSON: owner, host, pid,
  expiry), acquired via atomic ``O_EXCL`` create.  A lease is *stale* when
  its expiry has passed, or when it was taken by a now-dead process on
  this host; stale leases are re-claimed through an atomic rename, so of
  any number of concurrent stealers exactly one wins.  Leases are
  advisory: a lost lease race at worst duplicates one idempotent
  evaluation, and the store's atomic, uniquely-named temp writes make the
  duplicate harmless.
* **Merge** — :func:`merge_sweep` assembles a
  :class:`~repro.experiments.results.SweepResult` from a (possibly still
  partial) store, with an explicit missing-units report.

The protocol's crash/resume correctness is pinned down by the
fault-injection harness in ``tests/experiments/test_distributed.py``; the
byte-level walkthrough lives in ``docs/distributed-sweeps.md``.

Example:
    >>> import tempfile
    >>> from repro.experiments.spec import loads_sweep_spec
    >>> from repro.experiments.store import ResultStore
    >>> spec = loads_sweep_spec(
    ...     '{"name": "d", "workloads": [{"name": "433.milc", "references": 3000}],'
    ...     ' "codecs": ["raw", "delta"], "scale": {"small_buffer": 1000}}',
    ...     format="json")
    >>> cache = tempfile.mkdtemp()
    >>> reports = [DistributedSweepRunner(spec, cache, shard=f"{i}/2").run_worker()
    ...            for i in (1, 2)]
    >>> sum(report.evaluated for report in reports)
    2
    >>> merged = merge_sweep(spec, ResultStore(cache))
    >>> merged.is_complete
    True
    >>> [row.codec for row in merged.result.rows]
    ['raw', 'delta']
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.parallel import executor_kind, map_ordered
from repro.errors import ConfigurationError
from repro.experiments.plan import ExperimentUnit, default_code_version, expand_sweep
from repro.experiments.results import SweepResult
from repro.experiments.runner import SweepRunner, entry_is_complete, row_from_entry
from repro.experiments.spec import SweepSpec
from repro.experiments.store import ResultStore

__all__ = [
    "DEFAULT_LEASE_TTL",
    "FAULT_EXIT_CODE",
    "FAULT_EXIT_ENV",
    "EVAL_LOG_ENV",
    "parse_shard",
    "LeaseInfo",
    "LeaseCensus",
    "LeaseManager",
    "lease_census",
    "WorkerReport",
    "DistributedSweepRunner",
    "MergeReport",
    "merge_sweep",
    "ShardProgress",
    "shard_progress",
]

#: Default lease lifetime in seconds.  Units at sweep scale finish in
#: seconds, so ten minutes means a lease outliving its unit is a crashed
#: worker with overwhelming probability — and a crash on the *same host*
#: is reclaimed immediately via the dead-pid fast path, without waiting.
DEFAULT_LEASE_TTL = 600.0

#: Exit status of a worker killed by the fault-injection hook, chosen to
#: collide with no CLI convention (0 ok, 1 error, 2 usage, 130 SIGINT).
FAULT_EXIT_CODE = 42

#: Fault-injection hook: when set to an integer K, a worker calls
#: ``os._exit(FAULT_EXIT_CODE)`` immediately after storing its K-th
#: evaluated unit — *before* releasing the unit's lease, which is exactly
#: the crash window the lease-reclaim path exists for.  Test-harness
#: surface; never set it in production.
FAULT_EXIT_ENV = "REPRO_SWEEP_FAULT_EXIT_AFTER"

#: Evaluation spy: when set to a file path, a worker appends one line
#: ``<owner> <unit_hash> <label>`` per unit it evaluates (O_APPEND, one
#: write per line).  The fault-injection harness counts these lines across
#: workers and resumes to assert every unit was evaluated exactly once.
EVAL_LOG_ENV = "REPRO_SWEEP_EVAL_LOG"

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a 1-based ``"i/N"`` shard assignment into ``(index, count)``.

    Example:
        >>> parse_shard("2/4")
        (2, 4)
    """
    match = _SHARD_RE.match(text.strip())
    if not match:
        raise ConfigurationError(
            f"malformed shard {text!r}: expected 'i/N' with 1 <= i <= N, e.g. '2/4'"
        )
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise ConfigurationError(
            f"shard index out of range: {text!r} (expected 1 <= i <= N)"
        )
    return index, count


def _normalize_shard(shard) -> Optional[Tuple[int, int]]:
    if shard is None:
        return None
    if isinstance(shard, str):
        return parse_shard(shard)
    index, count = shard
    parsed = (int(index), int(count))
    if parsed[1] < 1 or not 1 <= parsed[0] <= parsed[1]:
        raise ConfigurationError(f"shard index out of range: {parsed[0]}/{parsed[1]}")
    return parsed


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0); unknown errors read as alive."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # EPERM and friends: the process exists
        return True
    return True


@dataclass(frozen=True)
class LeaseInfo:
    """The decoded content of one ``<hash>.lease`` file.

    Attributes:
        owner: Unique worker identity string (``host:pid:token`` by
            default, or whatever the worker was configured with).
        host: Hostname of the worker that took the lease.
        pid: Process id of the worker on that host.
        expires: Absolute expiry deadline on the lease clock.
    """

    owner: str
    host: str
    pid: int
    expires: float


@dataclass(frozen=True)
class LeaseCensus:
    """Lease-file counts of one store directory (``repro sweep status``).

    Attributes:
        active: Leases whose holder is (presumed) alive and unexpired.
        stale: Expired or dead-holder leases, re-claimable by any worker.
    """

    active: int
    stale: int

    @property
    def total(self) -> int:
        """All lease files present."""
        return self.active + self.stale


def _lease_is_stale(info: LeaseInfo, now: float, host: str) -> bool:
    """Stale = past expiry, or taken by a dead process on this host.

    The dead-pid fast path makes same-host crash/resume immediate: the
    resumed worker need not wait out the TTL of its predecessor's leases.
    A *remote* host's leases can only age out — pids are not comparable
    across hosts.
    """
    if info.expires <= now:
        return True
    return info.host == host and not _pid_alive(info.pid)


class LeaseManager:
    """Advisory per-unit lease files in a store directory.

    Acquisition is an atomic ``O_EXCL`` create of ``<hash>.lease``; stale
    leases (expired, or held by a dead same-host process) are stolen by
    atomically renaming the stale file away — of any number of concurrent
    stealers exactly one rename succeeds — then re-creating.  Leases are
    *advisory*: they minimise duplicate work, while the result store's
    atomic writes keep even a lost race harmless.

    Args:
        directory: The store directory leases live next to.
        owner: Unique worker identity; defaults to ``host:pid:token``.
        ttl: Lease lifetime in seconds from acquisition.
        clock: Injectable time source (``time.time`` by default) — the
            fault-injection tests drive expiry with a fake clock.
    """

    def __init__(
        self,
        directory,
        owner: Optional[str] = None,
        ttl: float = DEFAULT_LEASE_TTL,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if ttl <= 0:
            raise ConfigurationError(f"lease ttl must be positive, got {ttl}")
        self.directory = Path(directory)
        self.host = socket.gethostname()
        self.pid = os.getpid()
        self.owner = owner if owner else f"{self.host}:{self.pid}:{uuid.uuid4().hex[:8]}"
        self.ttl = float(ttl)
        self.clock: Callable[[], float] = clock if clock is not None else time.time

    def _path(self, unit_hash: str) -> Path:
        return self.directory / f"{unit_hash}.lease"

    def read(self, unit_hash: str) -> Optional[LeaseInfo]:
        """Decode a lease file; a missing or corrupt file reads as ``None``."""
        return _read_lease(self._path(unit_hash))

    def is_stale(self, info: LeaseInfo) -> bool:
        """Whether a lease is re-claimable from this worker's point of view."""
        return _lease_is_stale(info, self.clock(), self.host)

    def acquire(self, unit_hash: str) -> Optional[str]:
        """Try to take the unit's lease.

        Returns ``"fresh"`` (no lease existed), ``"reclaimed"`` (a stale
        lease was stolen), or ``None`` — another worker holds an active
        lease, or this worker lost the steal race.
        """
        path = self._path(unit_hash)
        self.directory.mkdir(parents=True, exist_ok=True)
        if self._create(path):
            return "fresh"
        info = _read_lease(path)
        if info is not None and not self.is_stale(info):
            return None
        # Stale (or corrupt) lease: the rename is the steal's atomic
        # arbiter.  Exactly one concurrent stealer's rename succeeds; the
        # losers get FileNotFoundError and back off without ever touching
        # the winner's fresh lease.
        trash = path.with_name(f"{path.name}.stale.{self.pid}.{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, trash)
        except OSError:
            return None
        try:
            os.unlink(trash)
        except OSError:
            pass
        return "reclaimed" if self._create(path) else None

    def _create(self, path: Path) -> bool:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        body = json.dumps(
            {
                "owner": self.owner,
                "host": self.host,
                "pid": self.pid,
                "expires": self.clock() + self.ttl,
            },
            sort_keys=True,
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(body)
        return True

    def release(self, unit_hash: str) -> bool:
        """Drop the unit's lease if this worker still owns it.

        A lease stolen out from under us (we overran our TTL) is left
        alone — it now belongs to the stealer.
        """
        path = self._path(unit_hash)
        info = _read_lease(path)
        if info is not None and info.owner != self.owner:
            return False
        try:
            os.unlink(path)
        except OSError:
            return False
        return True

    def prune_completed(self, store: ResultStore) -> int:
        """Remove lease files whose unit already has a stored result.

        A result's existence makes its lease moot regardless of owner (the
        protocol's single truth), so this is always safe — it sweeps up the
        leases crashed workers left behind on units that did complete.
        """
        removed = 0
        for path in sorted(self.directory.glob("*.lease")):
            unit_hash = path.name[: -len(".lease")]
            if len(unit_hash) == 64 and unit_hash in store:
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    continue
        return removed


def _read_lease(path: Path) -> Optional[LeaseInfo]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return LeaseInfo(
            owner=str(data["owner"]),
            host=str(data["host"]),
            pid=int(data["pid"]),
            expires=float(data["expires"]),
        )
    except (OSError, ValueError, TypeError, KeyError):
        return None


def lease_census(
    directory, clock: Optional[Callable[[], float]] = None
) -> LeaseCensus:
    """Count the active and stale leases in a store directory."""
    now = (clock if clock is not None else time.time)()
    host = socket.gethostname()
    active = stale = 0
    directory = Path(directory)
    if not directory.is_dir():
        return LeaseCensus(active=0, stale=0)
    for path in directory.glob("*.lease"):
        info = _read_lease(path)
        if info is None or _lease_is_stale(info, now, host):
            stale += 1
        else:
            active += 1
    return LeaseCensus(active=active, stale=stale)


@dataclass
class WorkerReport:
    """What one distributed worker did in one ``run_worker`` invocation.

    Attributes:
        owner: The worker's lease identity.
        shard: The ``(index, count)`` assignment, or ``None``.
        steal: Whether work stealing was enabled.
        total_units: Grid size of the whole sweep.
        shard_units: Units this worker's shard owns (= ``total_units``
            for an unsharded worker, ``0`` for a pure stealer).
        already_complete: Units that had a stored result before this
            worker started.
        evaluated: Units this worker evaluated and stored (stolen ones
            included).
        stolen: Evaluated units that were outside the worker's own shard.
        reclaimed: Stale leases this worker stole.
        skipped_leased: Pending units skipped because another worker held
            an active lease.
        pruned_leases: Moot lease files removed at the end of the run.
        remaining: Units still missing from the store when this worker
            finished (0 = the sweep is complete and mergeable).
        integrity_evictions: Store entries this worker quarantined after
            they failed their digest check on read (each one was re-run,
            so a nonzero count means corruption was found *and healed*).
    """

    owner: str
    shard: Optional[Tuple[int, int]] = None
    steal: bool = False
    total_units: int = 0
    shard_units: int = 0
    already_complete: int = 0
    evaluated: int = 0
    stolen: int = 0
    reclaimed: int = 0
    skipped_leased: int = 0
    pruned_leases: int = 0
    remaining: int = 0
    integrity_evictions: int = 0

    @property
    def is_sweep_complete(self) -> bool:
        """True when every grid cell had a result as this worker exited."""
        return self.remaining == 0

    def to_dict(self) -> Dict:
        """Plain-data form (CLI/JSON surface)."""
        return {
            "owner": self.owner,
            "shard": list(self.shard) if self.shard else None,
            "steal": self.steal,
            "total_units": self.total_units,
            "shard_units": self.shard_units,
            "already_complete": self.already_complete,
            "evaluated": self.evaluated,
            "stolen": self.stolen,
            "reclaimed": self.reclaimed,
            "skipped_leased": self.skipped_leased,
            "pruned_leases": self.pruned_leases,
            "remaining": self.remaining,
            "integrity_evictions": self.integrity_evictions,
        }


class DistributedSweepRunner(SweepRunner):
    """A cooperative sweep worker: shard-local evaluation plus stealing.

    Built on :class:`~repro.experiments.runner.SweepRunner`'s trace and
    evaluation machinery, but instead of computing the whole grid it

    1. evaluates the pending units of its own shard (every unit, when
       unsharded), taking a lease per unit so concurrent workers never
       duplicate in-flight work;
    2. with ``steal=True``, claims pending units outside its shard —
       including units whose lease went stale because their worker
       crashed — so stragglers finish without manual intervention;
    3. prunes moot lease files and aged-out temp files on the way out.

    ``run_worker`` returns a :class:`WorkerReport`, *not* a
    :class:`~repro.experiments.results.SweepResult` — one worker only ever
    sees part of the grid; :func:`merge_sweep` assembles the result from
    the store once ``report.remaining == 0``.

    Args:
        spec: The sweep to cooperate on.
        cache_dir: The shared result-store directory — the coordination
            substrate; required (there is nothing to coordinate through
            without it).
        shard: ``"i/N"`` (1-based) or ``(i, N)`` deterministic assignment;
            ``None`` plus ``steal=False`` claims the whole grid.
        steal: Claim pending units outside the shard after the shard
            drains.  ``steal=True`` with no shard is a pure stealing
            worker (every evaluation counts as stolen).
        lease_ttl: Lease lifetime in seconds.
        owner: Lease identity; defaults to ``host:pid:token``.
        clock: Injectable lease clock (tests drive expiry with it).
        on_unit: Optional ``(unit, entry) -> None`` callback after each
            evaluated unit is stored (the in-process evaluation spy).
        workers, executor, code_version, trace_provider: As in
            :class:`~repro.experiments.runner.SweepRunner`.  The group
            fan-out is capped at threads — lease state and counters live
            in this process.
    """

    def __init__(
        self,
        spec: SweepSpec,
        cache_dir,
        shard=None,
        steal: bool = False,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        owner: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        workers: int = 1,
        executor=None,
        code_version: Optional[str] = None,
        trace_provider=None,
        on_unit=None,
    ) -> None:
        if cache_dir is None:
            raise ConfigurationError(
                "distributed sweeps need a cache directory: the result store is "
                "the coordination substrate"
            )
        super().__init__(
            spec,
            cache_dir=cache_dir,
            workers=workers,
            executor=executor,
            code_version=code_version,
            trace_provider=trace_provider,
        )
        self.shard = _normalize_shard(shard)
        self.steal = bool(steal)
        self.leases = LeaseManager(
            self.store.directory, owner=owner, ttl=lease_ttl, clock=clock
        )
        self.on_unit = on_unit
        self._count_lock = threading.Lock()
        fault_after = os.environ.get(FAULT_EXIT_ENV, "").strip()
        self._fault_after: Optional[int] = int(fault_after) if fault_after else None
        self._eval_log = os.environ.get(EVAL_LOG_ENV, "").strip() or None

    def _effective_executor(self):
        """Thread-cap the group fan-out: leases and counters are in-process.

        Multi-*process* execution is the point of the distributed runner —
        it comes from launching more worker processes (``repro sweep run
        --shard``), each with its own lease identity, not from shipping
        this worker's lease state across a process pool.
        """
        if executor_kind(self.executor) == "process":
            return "thread"
        return super()._effective_executor()

    # -- the work loop ----------------------------------------------------------------
    def run_worker(self) -> WorkerReport:
        """Drain this worker's share of the sweep (plus stolen stragglers).

        Safe to call on a partially complete, crashed, or concurrently
        running sweep: completed units are skipped (done iff the result
        exists), in-flight units of live workers are lease-skipped, and
        stale leases are reclaimed so crashed workers' units get re-run.
        """
        report = WorkerReport(
            owner=self.leases.owner,
            shard=self.shard,
            steal=self.steal,
            total_units=len(self.plan.units),
        )
        hashes = {unit.label: unit.unit_hash(self.code_version) for unit in self.plan.units}
        if self.shard is not None:
            home = self.plan.shard_units(self.shard[0], self.shard[1], self.code_version)
        elif self.steal:
            home = ()  # a pure stealer has no shard of its own
        else:
            home = self.plan.units
        report.shard_units = len(home)
        report.already_complete = sum(
            1 for unit in self.plan.units if hashes[unit.label] in self.store
        )
        self._drain(home, hashes, stolen=False, report=report)
        if self.steal:
            home_labels = {unit.label for unit in home}
            strays = tuple(u for u in self.plan.units if u.label not in home_labels)
            self._drain(strays, hashes, stolen=True, report=report)
        report.pruned_leases = self.leases.prune_completed(self.store)
        self.store.prune_tmp()
        report.remaining = sum(
            1 for unit in self.plan.units if hashes[unit.label] not in self.store
        )
        report.integrity_evictions = self.store.integrity_evictions
        return report

    def run(self):  # type: ignore[override]
        """Alias of :meth:`run_worker` (returns a :class:`WorkerReport`).

        The distributed runner never holds the full grid, so unlike the
        base class it cannot return a
        :class:`~repro.experiments.results.SweepResult`; merge the store
        with :func:`merge_sweep` once the sweep is complete.
        """
        return self.run_worker()

    def _drain(self, units, hashes, stolen: bool, report: WorkerReport) -> None:
        """Lease-claim and evaluate the pending subset of ``units``."""
        pending = [u for u in units if hashes[u.label] not in self.store]
        if not pending:
            return
        grouped: Dict = {}
        for unit in pending:
            grouped.setdefault((unit.workload, unit.filter), []).append(unit)
        groups = [(key, tuple(members)) for key, members in grouped.items()]
        map_ordered(
            lambda group: self._run_group_leased(group, stolen, report),
            groups,
            workers=self.workers,
            executor=self._effective_executor(),
        )

    def _run_group_leased(self, group, stolen: bool, report: WorkerReport) -> None:
        (workload, filter_spec), units = group
        claimed: List[Tuple[ExperimentUnit, str]] = []
        for unit in units:
            unit_hash = unit.unit_hash(self.code_version)
            if unit_hash in self.store:
                continue  # finished elsewhere since the pending scan
            status = self.leases.acquire(unit_hash)
            if status is None:
                with self._count_lock:
                    report.skipped_leased += 1
                continue
            if status == "reclaimed":
                with self._count_lock:
                    report.reclaimed += 1
            claimed.append((unit, unit_hash))
        if not claimed:
            return
        addresses = self._filtered_trace(workload, filter_spec)
        for unit, unit_hash in claimed:
            if unit_hash in self.store:
                # Completed between claim and now (e.g. we reclaimed a
                # lease whose holder was slow, not dead, and it finished).
                self.leases.release(unit_hash)
                continue
            entry = self._evaluate_unit(unit, addresses)
            self.store.put(unit_hash, entry)
            self._record_evaluation(unit, unit_hash, entry, stolen, report)
            self.leases.release(unit_hash)

    def _record_evaluation(
        self, unit: ExperimentUnit, unit_hash: str, entry: Dict, stolen: bool, report: WorkerReport
    ) -> None:
        """Bookkeeping after a stored evaluation: spy log, hooks, fault exit.

        The fault-injection exit fires *after* the result is stored but
        *before* the lease is released (the caller releases) — the exact
        crash window the stale-lease reclaim path must cover.
        """
        with self._count_lock:
            report.evaluated += 1
            if stolen:
                report.stolen += 1
            count = report.evaluated
        if self._eval_log:
            line = f"{self.leases.owner} {unit_hash} {unit.label}\n"
            fd = os.open(self._eval_log, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        if self.on_unit is not None:
            self.on_unit(unit, entry)
        if self._fault_after is not None and count >= self._fault_after:
            os._exit(FAULT_EXIT_CODE)


@dataclass(frozen=True)
class MergeReport:
    """A merge of a (possibly partial) store into a sweep result.

    Attributes:
        result: The completed cells, in grid order (``cached=True`` rows;
            merge is a pure function of the store's metric content, so two
            stores holding the same completed grid merge byte-identically
            no matter which workers — or how many crashes — produced them).
        missing: Labels of the cells with no stored result, grid order.
        total_units: Grid size of the sweep.
    """

    result: SweepResult
    missing: Tuple[str, ...] = ()
    total_units: int = 0

    @property
    def is_complete(self) -> bool:
        """True when every grid cell merged."""
        return not self.missing

    @property
    def completed_units(self) -> int:
        """Number of cells with a stored result."""
        return self.total_units - len(self.missing)


def merge_sweep(
    spec: SweepSpec, store: ResultStore, code_version: Optional[str] = None
) -> MergeReport:
    """Assemble a sweep result from whatever the store holds.

    Never runs anything: cells without a (complete) stored result are
    reported in ``missing`` rather than computed, so merging is safe —
    and meaningful — while workers are still running.
    """
    version = code_version if code_version is not None else default_code_version()
    plan = expand_sweep(spec)
    rows = []
    missing: List[str] = []
    for unit in plan.units:
        entry = store.get(unit.unit_hash(version))
        if entry_is_complete(entry):
            rows.append(row_from_entry(unit, entry, cached=True))
        else:
            missing.append(unit.label)
    return MergeReport(
        result=SweepResult(name=spec.name, rows=tuple(rows)),
        missing=tuple(missing),
        total_units=len(plan.units),
    )


@dataclass(frozen=True)
class ShardProgress:
    """Completion state of one shard of a sweep.

    Attributes:
        index: 1-based shard index.
        count: Total number of shards in the partition.
        total_units: Units the shard owns (may be 0 on small grids).
        completed_units: Owned units with a stored result.
    """

    index: int
    count: int
    total_units: int
    completed_units: int

    @property
    def is_complete(self) -> bool:
        """True when every owned unit has a result (vacuously for 0)."""
        return self.completed_units == self.total_units


def shard_progress(
    spec: SweepSpec,
    store: ResultStore,
    shard_count: int,
    code_version: Optional[str] = None,
) -> Tuple[ShardProgress, ...]:
    """Per-shard completion of a sweep under an ``N``-way partition."""
    if shard_count < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {shard_count}")
    version = code_version if code_version is not None else default_code_version()
    totals = [0] * shard_count
    done = [0] * shard_count
    for unit in expand_sweep(spec).units:
        unit_hash = unit.unit_hash(version)
        shard = int(unit_hash, 16) % shard_count
        totals[shard] += 1
        if unit_hash in store:
            done[shard] += 1
    return tuple(
        ShardProgress(
            index=index + 1,
            count=shard_count,
            total_units=totals[index],
            completed_units=done[index],
        )
        for index in range(shard_count)
    )
