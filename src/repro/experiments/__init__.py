"""Declarative experiment orchestration: specs -> plan -> cached runs -> reports.

The paper's evaluation is a grid — workloads x cache filters x codecs at a
scale — and this subpackage makes that grid a first-class, declarative
object instead of a pile of scripts:

* :mod:`repro.experiments.spec` — TOML/JSON sweep specifications
  (:class:`SweepSpec` and its cells);
* :mod:`repro.experiments.plan` — expansion into content-addressed
  :class:`ExperimentUnit` cells (SHA-256 over parameters + code version);
* :mod:`repro.experiments.store` — the on-disk result cache keyed by unit
  hash, which is what makes re-runs and resumed sweeps near-instant;
* :mod:`repro.experiments.runner` — parallel execution
  (:class:`SweepRunner`), one filtered trace per (workload, filter) group;
* :mod:`repro.experiments.distributed` — cooperative multi-process sweeps:
  deterministic sharding, lease/steal scheduling over the shared store, and
  merging of (possibly partial) stores into a :class:`SweepResult`;
* :mod:`repro.experiments.results` — typed rows and text/Markdown/CSV/JSON
  exports;
* :mod:`repro.experiments.codecs` — the per-cell measurement shared with
  :class:`repro.analysis.harness.EvaluationHarness`, so declarative and
  hand-driven numbers are identical by construction.

The CLI front-end is ``repro sweep {run,status,report}``; see
``docs/experiments.md`` for the spec file reference.

Example:
    >>> import tempfile
    >>> from repro.experiments import loads_sweep_spec, run_sweep
    >>> spec = loads_sweep_spec('''
    ... name = "doctest"
    ... [[workloads]]
    ... name = "462.libquantum"
    ... references = 4000
    ... [[codecs]]
    ... kind = "lossless"
    ... [scale]
    ... small_buffer = 1000
    ... ''')
    >>> result = run_sweep(spec, cache_dir=tempfile.mkdtemp())
    >>> len(result.rows)
    1
    >>> result.rows[0].codec
    'lossless'
"""

from repro.experiments.codecs import evaluate_codec, resolve_lossy_config
from repro.experiments.distributed import (
    DEFAULT_LEASE_TTL,
    DistributedSweepRunner,
    LeaseManager,
    MergeReport,
    ShardProgress,
    WorkerReport,
    lease_census,
    merge_sweep,
    parse_shard,
    shard_progress,
)
from repro.experiments.plan import (
    ExperimentPlan,
    ExperimentUnit,
    default_code_version,
    expand_sweep,
)
from repro.experiments.results import SweepResult, UnitResult
from repro.experiments.runner import SweepRunner, SweepStatus, run_sweep
from repro.experiments.spec import (
    CODEC_KINDS,
    CodecSpec,
    EvaluationScale,
    FilterSpec,
    SweepSpec,
    WorkloadSpec,
    load_sweep_spec,
    loads_sweep_spec,
    sweep_spec_from_dict,
)
from repro.experiments.store import ResultStore

__all__ = [
    # spec
    "SweepSpec",
    "WorkloadSpec",
    "FilterSpec",
    "CodecSpec",
    "EvaluationScale",
    "CODEC_KINDS",
    "load_sweep_spec",
    "loads_sweep_spec",
    "sweep_spec_from_dict",
    # plan
    "ExperimentPlan",
    "ExperimentUnit",
    "expand_sweep",
    "default_code_version",
    # execution
    "SweepRunner",
    "SweepStatus",
    "run_sweep",
    "ResultStore",
    # distributed
    "DEFAULT_LEASE_TTL",
    "DistributedSweepRunner",
    "LeaseManager",
    "WorkerReport",
    "MergeReport",
    "ShardProgress",
    "parse_shard",
    "merge_sweep",
    "shard_progress",
    "lease_census",
    # results
    "SweepResult",
    "UnitResult",
    # measurement
    "evaluate_codec",
    "resolve_lossy_config",
]
