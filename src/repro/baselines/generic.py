"""General-purpose compression baselines (bzip2 / gzip / lzma alone).

Table 1's second column ("bz2") compresses the raw trace — the little-endian
64-bit address records, no transformation — with bzip2 alone.  These helpers
reproduce that baseline and report the same metric, bits per address.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import get_backend
from repro.traces.trace import as_address_array

__all__ = ["compress_raw", "decompress_raw", "raw_bits_per_address"]


def compress_raw(addresses, backend="bz2") -> bytes:
    """Compress the raw 8-byte-per-address representation of a trace."""
    values = as_address_array(addresses)
    return get_backend(backend).compress(values.tobytes())


def decompress_raw(payload: bytes, backend="bz2") -> np.ndarray:
    """Invert :func:`compress_raw`."""
    raw = get_backend(backend).decompress(payload)
    return np.frombuffer(raw, dtype="<u8").copy()


def raw_bits_per_address(addresses, backend="bz2") -> float:
    """Bits per address of the plain general-purpose-compressor baseline."""
    values = as_address_array(addresses)
    if values.size == 0:
        return 0.0
    compressed = compress_raw(values, backend)
    return 8.0 * len(compressed) / values.size
