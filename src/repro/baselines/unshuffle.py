"""Byte-unshuffling baseline (Table 1, column "us").

Byte-unshuffling is the first half of bytesort: for a window of N 8-byte
addresses, output eight blocks of N bytes — the first block holds the first
byte of every address in sequence order, the second block the second byte,
and so on — then compress the transformed stream with a byte-level
compressor.  Unlike bytesort it never reorders addresses between column
emissions, so it exposes strictly less regularity.

The transform here operates window by window (buffer of ``buffer_addresses``
addresses) exactly like the streaming bytesort codec, so the comparison in
the Table 1 bench is apples to apples.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.backend import get_backend
from repro.errors import CodecError
from repro.traces.trace import ADDRESS_BYTES, as_address_array

__all__ = [
    "unshuffle_window",
    "reshuffle_window",
    "unshuffle_transform",
    "unshuffle_inverse",
    "compress_unshuffled",
    "decompress_unshuffled",
    "unshuffled_bits_per_address",
]


def unshuffle_window(addresses: np.ndarray) -> bytes:
    """Byte-unshuffle one window: column-major byte layout, MSB column first.

    The most significant byte column comes first to match the paper's
    bytesort output order (Figure 2 emits byte ``LL-1`` first).
    """
    values = as_address_array(addresses)
    columns = values.view(np.uint8).reshape(values.size, ADDRESS_BYTES)
    # Column 7 is the most significant byte (little-endian storage).
    return columns[:, ::-1].T.tobytes()


def reshuffle_window(payload: bytes) -> np.ndarray:
    """Invert :func:`unshuffle_window` for one window."""
    if len(payload) % ADDRESS_BYTES:
        raise CodecError("unshuffled window length must be a multiple of 8")
    count = len(payload) // ADDRESS_BYTES
    columns = np.frombuffer(payload, dtype=np.uint8).reshape(ADDRESS_BYTES, count)
    return np.ascontiguousarray(columns.T[:, ::-1]).view("<u8").reshape(count).copy()


def unshuffle_transform(addresses, buffer_addresses: int = 1_000_000) -> bytes:
    """Byte-unshuffle a whole trace window by window (no entropy coding)."""
    values = as_address_array(addresses)
    pieces: List[bytes] = []
    for start in range(0, values.size, buffer_addresses):
        pieces.append(unshuffle_window(values[start : start + buffer_addresses]))
    return b"".join(pieces)


def unshuffle_inverse(payload: bytes, buffer_addresses: int = 1_000_000) -> np.ndarray:
    """Invert :func:`unshuffle_transform` (window sizes must match)."""
    window_bytes = buffer_addresses * ADDRESS_BYTES
    windows = []
    for start in range(0, len(payload), window_bytes):
        windows.append(reshuffle_window(payload[start : start + window_bytes]))
    if not windows:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(windows)


def compress_unshuffled(addresses, buffer_addresses: int = 1_000_000, backend="bz2") -> bytes:
    """Byte-unshuffle then compress with a byte-level back-end."""
    return get_backend(backend).compress(unshuffle_transform(addresses, buffer_addresses))


def decompress_unshuffled(payload: bytes, buffer_addresses: int = 1_000_000, backend="bz2") -> np.ndarray:
    """Invert :func:`compress_unshuffled`."""
    return unshuffle_inverse(get_backend(backend).decompress(payload), buffer_addresses)


def unshuffled_bits_per_address(addresses, buffer_addresses: int = 1_000_000, backend="bz2") -> float:
    """Bits per address of the unshuffle+bzip2 baseline (Table 1 column 3)."""
    values = as_address_array(addresses)
    if values.size == 0:
        return 0.0
    return 8.0 * len(compress_unshuffled(values, buffer_addresses, backend)) / values.size
