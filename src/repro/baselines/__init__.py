"""Baseline compressors the paper compares against (and related work)."""

from repro.baselines.delta import (
    compress_delta,
    decompress_delta,
    delta_bits_per_address,
    delta_decode,
    delta_encode,
)
from repro.baselines.generic import compress_raw, decompress_raw, raw_bits_per_address
from repro.baselines.unshuffle import (
    compress_unshuffled,
    decompress_unshuffled,
    unshuffle_inverse,
    unshuffle_transform,
    unshuffled_bits_per_address,
)

__all__ = [
    "compress_raw",
    "decompress_raw",
    "raw_bits_per_address",
    "compress_unshuffled",
    "decompress_unshuffled",
    "unshuffle_transform",
    "unshuffle_inverse",
    "unshuffled_bits_per_address",
    "compress_delta",
    "decompress_delta",
    "delta_encode",
    "delta_decode",
    "delta_bits_per_address",
]
