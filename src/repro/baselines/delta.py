"""Mache/PDATS-style delta-encoding baseline.

The related-work section of the paper describes the Mache and PDATS family
of lossless address-trace compressors: replace each address by the
difference with the previous address (per label/stream), encode small deltas
in few bytes, and hand the result to a general-purpose compressor.  This
module implements a single-stream variant of that idea so the benchmark
tables can include a classic delta-coding comparator in addition to
bzip2-alone, byte-unshuffling, the VPC baseline and bytesort.

Encoding of one delta (signed, zig-zag transformed):

* values 0..251 → one byte,
* escape byte 252 + 2 bytes (little-endian) for deltas up to 2**16 - 1,
* escape byte 253 + 4 bytes for deltas up to 2**32 - 1,
* escape byte 254 + 8 bytes otherwise.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from repro.core.backend import get_backend
from repro.errors import CodecError
from repro.traces.trace import as_address_array

__all__ = [
    "delta_encode",
    "delta_decode",
    "compress_delta",
    "decompress_delta",
    "delta_bits_per_address",
]

_MASK64 = (1 << 64) - 1
_ONE_BYTE_LIMIT = 252
_ESCAPE16 = 252
_ESCAPE32 = 253
_ESCAPE64 = 254


def _zigzag(delta: int) -> int:
    """Map a signed delta to an unsigned value (small magnitudes stay small)."""
    return (delta << 1) if delta >= 0 else ((-delta) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


def _signed_wrapped_delta(value: int, previous: int) -> int:
    """Shortest signed delta between two 64-bit values (modulo 2**64)."""
    delta = (value - previous) & _MASK64
    if delta >= 1 << 63:
        delta -= 1 << 64
    return delta


def delta_encode(addresses) -> bytes:
    """Delta-encode a trace into the variable-length byte representation.

    Example:
        >>> payload = delta_encode([100, 101, 102, 50])
        >>> delta_decode(payload).tolist()
        [100, 101, 102, 50]
    """
    values = as_address_array(addresses).tolist()
    out = bytearray()
    previous = 0
    for value in values:
        delta = _signed_wrapped_delta(value, previous)
        previous = value
        encoded = _zigzag(delta)
        if encoded < _ONE_BYTE_LIMIT:
            out.append(encoded)
        elif encoded < 1 << 16:
            out.append(_ESCAPE16)
            out.extend(struct.pack("<H", encoded))
        elif encoded < 1 << 32:
            out.append(_ESCAPE32)
            out.extend(struct.pack("<I", encoded))
        else:
            out.append(_ESCAPE64)
            out.extend(struct.pack("<Q", encoded))
    return bytes(out)


def delta_decode(payload: bytes) -> np.ndarray:
    """Invert :func:`delta_encode`."""
    values: List[int] = []
    previous = 0
    offset = 0
    length = len(payload)
    while offset < length:
        first = payload[offset]
        offset += 1
        if first < _ONE_BYTE_LIMIT:
            encoded = first
        elif first == _ESCAPE16:
            (encoded,) = struct.unpack_from("<H", payload, offset)
            offset += 2
        elif first == _ESCAPE32:
            (encoded,) = struct.unpack_from("<I", payload, offset)
            offset += 4
        elif first == _ESCAPE64:
            (encoded,) = struct.unpack_from("<Q", payload, offset)
            offset += 8
        else:
            raise CodecError(f"invalid delta escape byte {first}")
        previous = (previous + _unzigzag(encoded)) & _MASK64
        values.append(previous)
    return np.array(values, dtype=np.uint64)


def compress_delta(addresses, backend="bz2") -> bytes:
    """Delta-encode then compress with a byte-level back-end."""
    return get_backend(backend).compress(delta_encode(addresses))


def decompress_delta(payload: bytes, backend="bz2") -> np.ndarray:
    """Invert :func:`compress_delta`."""
    return delta_decode(get_backend(backend).decompress(payload))


def delta_bits_per_address(addresses, backend="bz2") -> float:
    """Bits per address of the delta+bzip2 baseline."""
    values = as_address_array(addresses)
    if values.size == 0:
        return 0.0
    return 8.0 * len(compress_delta(values, backend)) / values.size
