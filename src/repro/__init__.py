"""Reproduction of "Online compression of cache-filtered address traces".

The library implements the ATC trace compressor (Michaud, ISPASS 2009) and
every substrate its evaluation relies on: synthetic SPEC-like workloads, the
L1 cache filter, multi-configuration cache simulation, value/address
predictors (the TCgen/VPC-style baseline and the C/DC predictor) and the
metric/reporting layer used by the benchmark harness.

Quick tour of the public API (see the package README for a walkthrough):

* :mod:`repro.core` — the paper's contribution: bytesort, the lossy
  phase-based codec, and the ATC streaming encoder/decoder + container.
* :mod:`repro.traces` — trace types, synthetic workloads and the cache
  filter that produces cache-filtered address traces.
* :mod:`repro.cache` — set-associative caches and the stack-distance
  simulator used for miss-ratio sweeps.
* :mod:`repro.predictors` — the VPC/TCgen baseline compressor and the C/DC
  address predictor.
* :mod:`repro.baselines` — bzip2-alone, byte-unshuffling and delta baselines.
* :mod:`repro.analysis` — metrics, exact-vs-lossy comparison pipelines and
  text-table reporting.
"""

from repro.core.atc import (
    AtcDecoder,
    AtcEncoder,
    atc_open,
    compress_stream,
    compress_trace,
    decompress_stream,
    decompress_trace,
)
from repro.core.bytesort import (
    bytesort_inverse,
    bytesort_inverse_window,
    bytesort_transform,
    bytesort_window,
)
from repro.core.lossless import LosslessCodec, lossless_compress, lossless_decompress
from repro.core.lossy import LossyCodec, LossyCompressed, LossyConfig, lossy_compress, lossy_decompress
from repro.errors import (
    CodecError,
    ConfigurationError,
    ContainerError,
    ReproError,
    TraceFormatError,
)
from repro.traces.filter import CacheFilter, StreamingCacheFilter, filtered_spec_like_trace
from repro.traces.spec_like import SPEC_LIKE_NAMES, spec_like_suite
from repro.traces.trace import AddressTrace, iter_raw_chunks, read_raw_trace, write_raw_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core codecs
    "AtcEncoder",
    "AtcDecoder",
    "atc_open",
    "compress_trace",
    "decompress_trace",
    "compress_stream",
    "decompress_stream",
    "LosslessCodec",
    "lossless_compress",
    "lossless_decompress",
    "LossyCodec",
    "LossyConfig",
    "LossyCompressed",
    "lossy_compress",
    "lossy_decompress",
    "bytesort_window",
    "bytesort_inverse_window",
    "bytesort_transform",
    "bytesort_inverse",
    # traces
    "AddressTrace",
    "read_raw_trace",
    "write_raw_trace",
    "iter_raw_chunks",
    "CacheFilter",
    "StreamingCacheFilter",
    "filtered_spec_like_trace",
    "spec_like_suite",
    "SPEC_LIKE_NAMES",
    # errors
    "ReproError",
    "TraceFormatError",
    "ContainerError",
    "CodecError",
    "ConfigurationError",
]
