"""Reproduction of "Online compression of cache-filtered address traces".

The library implements the ATC trace compressor (Michaud, ISPASS 2009) and
every substrate its evaluation relies on: synthetic SPEC-like workloads, the
L1 cache filter, multi-configuration cache simulation, value/address
predictors (the TCgen/VPC-style baseline and the C/DC predictor) and the
metric/reporting layer used by the benchmark harness.

Quick tour of the public API (see the package README for a walkthrough):

* :mod:`repro.core` — the paper's contribution: bytesort, the lossy
  phase-based codec, and the ATC streaming encoder/decoder + container.
* :mod:`repro.traces` — trace types, synthetic workloads and the cache
  filter that produces cache-filtered address traces.
* :mod:`repro.cache` — set-associative caches and the stack-distance
  simulator used for miss-ratio sweeps.
* :mod:`repro.predictors` — the VPC/TCgen baseline compressor and the C/DC
  address predictor.
* :mod:`repro.baselines` — bzip2-alone, byte-unshuffling and delta baselines.
* :mod:`repro.analysis` — metrics, exact-vs-lossy comparison pipelines and
  text-table reporting.
* :mod:`repro.experiments` — declarative experiment orchestration: TOML/JSON
  sweep specs, content-hash result caching, parallel execution and typed
  report tables (the ``repro sweep`` CLI).

The full documentation site lives under ``docs/`` (architecture overview,
paper-to-code map, the ATC container format specification and the sweep
spec reference).

Example:
    >>> import numpy as np, repro
    >>> trace = np.arange(3000, dtype=np.uint64) % 500
    >>> payload = repro.lossless_compress(trace, buffer_addresses=1000)
    >>> bool(np.array_equal(repro.lossless_decompress(payload), trace))
    True
"""

from repro.core.atc import (
    AtcDecoder,
    AtcEncoder,
    atc_open,
    compress_stream,
    compress_trace,
    decompress_stream,
    decompress_trace,
)
from repro.core.bytesort import (
    bytesort_inverse,
    bytesort_inverse_window,
    bytesort_transform,
    bytesort_window,
)
from repro.core.lossless import LosslessCodec, lossless_compress, lossless_decompress
from repro.core.lossy import LossyCodec, LossyCompressed, LossyConfig, lossy_compress, lossy_decompress
from repro.core.parallel import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.errors import (
    CodecError,
    ConfigurationError,
    ContainerError,
    IntegrityError,
    ParallelExecutionError,
    ReproError,
    TraceFormatError,
)
from repro.traces.filter import (
    CacheFilter,
    StreamingCacheFilter,
    filter_spec_like_traces,
    filtered_spec_like_trace,
)
from repro.traces.spec_like import SPEC_LIKE_NAMES, spec_like_suite
from repro.traces.trace import AddressTrace, iter_raw_chunks, read_raw_trace, write_raw_trace

__version__ = "1.9.0"

# The experiments subsystem imports the trace/codec layers above, so its
# re-exports come last to keep the import order acyclic.
from repro.experiments import (
    CodecSpec,
    FilterSpec,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
    load_sweep_spec,
    run_sweep,
)

__all__ = [
    "__version__",
    # core codecs
    "AtcEncoder",
    "AtcDecoder",
    "atc_open",
    "compress_trace",
    "decompress_trace",
    "compress_stream",
    "decompress_stream",
    "LosslessCodec",
    "lossless_compress",
    "lossless_decompress",
    "LossyCodec",
    "LossyConfig",
    "LossyCompressed",
    "lossy_compress",
    "lossy_decompress",
    "bytesort_window",
    "bytesort_inverse_window",
    "bytesort_transform",
    "bytesort_inverse",
    # traces
    "AddressTrace",
    "read_raw_trace",
    "write_raw_trace",
    "iter_raw_chunks",
    "CacheFilter",
    "StreamingCacheFilter",
    "filtered_spec_like_trace",
    "filter_spec_like_traces",
    "spec_like_suite",
    "SPEC_LIKE_NAMES",
    # executor engine
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    # experiments
    "SweepSpec",
    "WorkloadSpec",
    "FilterSpec",
    "CodecSpec",
    "SweepRunner",
    "load_sweep_spec",
    "run_sweep",
    # errors
    "ReproError",
    "TraceFormatError",
    "ContainerError",
    "IntegrityError",
    "CodecError",
    "ConfigurationError",
    "ParallelExecutionError",
]
