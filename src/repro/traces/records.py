"""Tagging of spare high-order bits in cache-block addresses.

With 64-byte blocks, block addresses have their six most significant bits
free; the paper notes these bits "may be used to store some extra
information, e.g., whether the address corresponds to a demand miss or a
write-back" (Section 2).  This module implements that convention so users
of the library can carry per-record tags through compression and strip them
again for cache simulation.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Tuple

import numpy as np

from repro.errors import TraceFormatError
from repro.traces.trace import as_address_array

__all__ = ["RecordKind", "TAG_SHIFT", "TAG_BITS", "tag_addresses", "untag_addresses"]

#: Number of spare bits at the top of a 64-byte-block address.
TAG_BITS = 6

#: Bit position where the tag field starts.
TAG_SHIFT = 64 - TAG_BITS

_TAG_MASK = np.uint64(((1 << TAG_BITS) - 1) << TAG_SHIFT)
_ADDRESS_MASK = np.uint64((1 << TAG_SHIFT) - 1)


class RecordKind(IntEnum):
    """Record tags stored in the spare high bits of a block address."""

    DEMAND_MISS = 0
    WRITE_BACK = 1
    PREFETCH = 2
    INSTRUCTION_MISS = 3


def tag_addresses(block_addresses, kinds) -> np.ndarray:
    """Pack a :class:`RecordKind` tag into the top bits of each block address.

    Args:
        block_addresses: Block addresses (must fit in the low 58 bits).
        kinds: A single :class:`RecordKind` or an array of per-record kinds.

    Raises:
        TraceFormatError: If an address already uses the tag bits.
    """
    addresses = as_address_array(block_addresses)
    if addresses.size and bool((addresses & _TAG_MASK).any()):
        raise TraceFormatError("block addresses already use the spare tag bits")
    if isinstance(kinds, (int, RecordKind)):
        kind_values = np.full(addresses.shape, int(kinds), dtype=np.uint64)
    else:
        kind_values = np.asarray([int(kind) for kind in kinds], dtype=np.uint64)
        if kind_values.shape != addresses.shape:
            raise TraceFormatError("kinds must be scalar or match the address count")
    if kind_values.size and int(kind_values.max()) >= (1 << TAG_BITS):
        raise TraceFormatError(f"record kinds must fit in {TAG_BITS} bits")
    return (addresses | (kind_values << np.uint64(TAG_SHIFT))).astype(np.uint64)


def untag_addresses(tagged_addresses) -> Tuple[np.ndarray, np.ndarray]:
    """Split tagged addresses into ``(block_addresses, kinds)`` arrays."""
    tagged = as_address_array(tagged_addresses)
    kinds = (tagged >> np.uint64(TAG_SHIFT)).astype(np.uint8)
    return (tagged & _ADDRESS_MASK).astype(np.uint64), kinds
