"""Address trace container and raw 64-bit trace I/O.

The traces consumed by ATC have "the simplest format that an address trace
can have: they are just sequences of 64-bit values" (paper, Section 2).
This module provides:

* :class:`AddressTrace` — a thin, validated wrapper around a NumPy
  ``uint64`` array with helpers used throughout the library (byte views,
  interval slicing, distinct-address counting, working-set statistics).
* :func:`write_raw_trace` / :func:`read_raw_trace` — the little-endian
  on-disk representation (8 bytes per address) used by the CLI tools, the
  same layout as the paper's ``fread``/``fwrite`` of ``unsigned long long``.
* Helpers converting between byte addresses and cache-block addresses.

The paper works with 64-byte cache blocks, so block addresses have their six
most significant bits free; the :mod:`repro.traces.records` module uses that
room for tagging.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

import numpy as np

from repro.errors import TraceFormatError

__all__ = [
    "ADDRESS_BYTES",
    "DEFAULT_BLOCK_BYTES",
    "AddressTrace",
    "as_address_array",
    "block_address",
    "byte_address",
    "read_raw_trace",
    "write_raw_trace",
    "iter_raw_addresses",
]

#: Size in bytes of one trace record (a 64-bit address).
ADDRESS_BYTES = 8

#: Cache block size assumed throughout the paper (64-byte blocks).
DEFAULT_BLOCK_BYTES = 64

_UINT64 = np.dtype("<u8")


def as_address_array(addresses: Union[Sequence[int], np.ndarray, Iterable[int]]) -> np.ndarray:
    """Convert ``addresses`` to a contiguous little-endian ``uint64`` array.

    Accepts any iterable of non-negative integers below 2**64 as well as
    NumPy arrays of any integer dtype.  Negative values raise
    :class:`TraceFormatError` because a trace address is by definition an
    unsigned quantity.
    """
    if isinstance(addresses, np.ndarray):
        if addresses.dtype == _UINT64 and addresses.flags.c_contiguous:
            return addresses
        if np.issubdtype(addresses.dtype, np.signedinteger) and addresses.size and addresses.min() < 0:
            raise TraceFormatError("trace addresses must be non-negative")
        return np.ascontiguousarray(addresses, dtype=_UINT64)
    values = list(addresses)
    for value in values:
        if value < 0:
            raise TraceFormatError("trace addresses must be non-negative")
        if value >= 1 << 64:
            raise TraceFormatError("trace addresses must fit in 64 bits")
    return np.array(values, dtype=_UINT64)


def block_address(byte_addresses, block_bytes: int = DEFAULT_BLOCK_BYTES) -> np.ndarray:
    """Convert byte addresses to cache-block addresses (``addr // block``)."""
    array = as_address_array(byte_addresses)
    shift = int(block_bytes).bit_length() - 1
    if 1 << shift != block_bytes:
        raise TraceFormatError(f"block size must be a power of two, got {block_bytes}")
    return array >> np.uint64(shift)


def byte_address(block_addresses, block_bytes: int = DEFAULT_BLOCK_BYTES) -> np.ndarray:
    """Convert block addresses back to the byte address of the block start."""
    array = as_address_array(block_addresses)
    shift = int(block_bytes).bit_length() - 1
    if 1 << shift != block_bytes:
        raise TraceFormatError(f"block size must be a power of two, got {block_bytes}")
    return array << np.uint64(shift)


@dataclass(frozen=True)
class AddressTrace:
    """A finite sequence of 64-bit trace addresses.

    The class is a frozen value object: the underlying array is never
    mutated by library code, and helpers always return new arrays/traces.

    Attributes:
        addresses: The little-endian ``uint64`` address array.
        name: Optional label (benchmark name, workload id) used in reports.
    """

    addresses: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "addresses", as_address_array(self.addresses))

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return int(self.addresses.size)

    def __iter__(self) -> Iterator[int]:
        return iter(int(value) for value in self.addresses)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return AddressTrace(self.addresses[index], name=self.name)
        return int(self.addresses[index])

    def __eq__(self, other) -> bool:
        if not isinstance(other, AddressTrace):
            return NotImplemented
        return len(self) == len(other) and bool(np.array_equal(self.addresses, other.addresses))

    def __hash__(self) -> int:  # pragma: no cover - value object convenience
        return hash((self.name, self.addresses.tobytes()))

    # -- constructors --------------------------------------------------------------
    @classmethod
    def from_iterable(cls, addresses: Iterable[int], name: str = "") -> "AddressTrace":
        """Build a trace from any iterable of integer addresses."""
        return cls(as_address_array(addresses), name=name)

    @classmethod
    def empty(cls, name: str = "") -> "AddressTrace":
        """Return an empty trace (length zero)."""
        return cls(np.empty(0, dtype=_UINT64), name=name)

    # -- views ----------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the trace as little-endian 8-byte records."""
        return self.addresses.astype(_UINT64, copy=False).tobytes()

    def byte_columns(self) -> np.ndarray:
        """Return the ``(len, 8)`` array of the bytes of each address.

        Column ``j`` holds byte of order ``j`` (``j = 0`` is the least
        significant byte), matching the paper's ``b[j](k)`` notation.
        """
        return self.addresses.view(np.uint8).reshape(len(self), ADDRESS_BYTES)

    def intervals(self, length: int) -> Iterator["AddressTrace"]:
        """Yield consecutive sub-traces of ``length`` addresses.

        The final interval may be shorter when the trace length is not a
        multiple of ``length`` (the lossy codec handles that tail as its own
        interval, exactly like the streaming encoder does).
        """
        if length <= 0:
            raise TraceFormatError("interval length must be positive")
        for start in range(0, len(self), length):
            yield AddressTrace(self.addresses[start : start + length], name=self.name)

    # -- statistics -----------------------------------------------------------------
    def distinct_addresses(self) -> int:
        """Number of distinct addresses (the trace's footprint in blocks)."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.addresses).size)

    def footprint_bytes(self, block_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
        """Footprint in bytes assuming each address names one cache block."""
        return self.distinct_addresses() * block_bytes

    def concat(self, other: "AddressTrace") -> "AddressTrace":
        """Return the concatenation of two traces (keeps ``self.name``)."""
        return AddressTrace(np.concatenate([self.addresses, other.addresses]), name=self.name)


def write_raw_trace(trace: Union[AddressTrace, np.ndarray, Sequence[int]], destination) -> int:
    """Write a trace as raw little-endian 64-bit values.

    Args:
        trace: Trace, array or sequence of addresses.
        destination: File path (``str``/``os.PathLike``) or binary file object.

    Returns:
        Number of bytes written.
    """
    if isinstance(trace, AddressTrace):
        payload = trace.to_bytes()
    else:
        payload = as_address_array(trace).tobytes()
    if hasattr(destination, "write"):
        destination.write(payload)
    else:
        with open(os.fspath(destination), "wb") as handle:
            handle.write(payload)
    return len(payload)


def read_raw_trace(source, name: str = "") -> AddressTrace:
    """Read a raw little-endian 64-bit trace from a path or file object.

    Raises:
        TraceFormatError: If the byte length is not a multiple of eight.
    """
    if hasattr(source, "read"):
        payload = source.read()
    else:
        with open(os.fspath(source), "rb") as handle:
            payload = handle.read()
    if len(payload) % ADDRESS_BYTES:
        raise TraceFormatError(
            f"raw trace length {len(payload)} is not a multiple of {ADDRESS_BYTES} bytes"
        )
    addresses = np.frombuffer(payload, dtype=_UINT64).copy()
    return AddressTrace(addresses, name=name)


def iter_raw_addresses(source, chunk_addresses: int = 65536) -> Iterator[int]:
    """Stream addresses from a raw trace without loading it fully in memory.

    This is the reading loop of the paper's ``bin2atc`` example program
    (Figure 6): read 8 bytes at a time from a file-like object and yield
    each 64-bit value.  Reading is chunked for speed.
    """
    handle = source
    opened = False
    if not hasattr(source, "read"):
        handle = open(os.fspath(source), "rb")
        opened = True
    try:
        while True:
            payload = handle.read(chunk_addresses * ADDRESS_BYTES)
            if not payload:
                return
            if len(payload) % ADDRESS_BYTES:
                raise TraceFormatError("raw trace ends with a partial 64-bit record")
            for value in np.frombuffer(payload, dtype=_UINT64):
                yield int(value)
    finally:
        if opened:
            handle.close()


def _ensure_binary_stream(obj) -> io.BufferedIOBase:  # pragma: no cover - helper for CLI
    if isinstance(obj, io.BufferedIOBase):
        return obj
    raise TraceFormatError("expected a binary stream")
