"""Address trace container and raw 64-bit trace I/O.

The traces consumed by ATC have "the simplest format that an address trace
can have: they are just sequences of 64-bit values" (paper, Section 2).
This module provides:

* :class:`AddressTrace` — a thin, validated wrapper around a NumPy
  ``uint64`` array with helpers used throughout the library (byte views,
  interval slicing, distinct-address counting, working-set statistics).
* :func:`write_raw_trace` / :func:`read_raw_trace` — the little-endian
  on-disk representation (8 bytes per address) used by the CLI tools, the
  same layout as the paper's ``fread``/``fwrite`` of ``unsigned long long``.
* Helpers converting between byte addresses and cache-block addresses.

The paper works with 64-byte cache blocks, so block addresses have their six
most significant bits free; the :mod:`repro.traces.records` module uses that
room for tagging.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError

__all__ = [
    "ADDRESS_BYTES",
    "DEFAULT_BLOCK_BYTES",
    "DEFAULT_CHUNK_ADDRESSES",
    "check_chunk_addresses",
    "AddressTrace",
    "as_address_array",
    "block_address",
    "byte_address",
    "read_raw_trace",
    "write_raw_trace",
    "iter_raw_addresses",
    "iter_raw_chunks",
]

#: Size in bytes of one trace record (a 64-bit address).
ADDRESS_BYTES = 8

#: Cache block size assumed throughout the paper (64-byte blocks).
DEFAULT_BLOCK_BYTES = 64

#: Default chunk size (in addresses) of the streaming pipeline stages:
#: 65536 addresses = 512 KB per chunk, small enough that a dozen in-flight
#: chunks stay cheap, large enough that per-chunk Python overhead is
#: negligible.  Defined here (the leaf module of the trace substrate) and
#: re-exported by :mod:`repro.core.stream` so every ``iter_*``/``*_stream``
#: API shares one constant.
DEFAULT_CHUNK_ADDRESSES = 65536

_UINT64 = np.dtype("<u8")


def check_chunk_addresses(chunk_addresses: int) -> int:
    """Validate a streaming chunk-size knob (must be a positive integer)."""
    chunk_addresses = int(chunk_addresses)
    if chunk_addresses <= 0:
        raise ConfigurationError(f"chunk_addresses must be positive, got {chunk_addresses}")
    return chunk_addresses


def as_address_array(addresses: Union[Sequence[int], np.ndarray, Iterable[int]]) -> np.ndarray:
    """Convert ``addresses`` to a contiguous little-endian ``uint64`` array.

    Accepts any iterable of non-negative integers below 2**64 as well as
    NumPy arrays of any integer dtype.  Negative values raise
    :class:`TraceFormatError` because a trace address is by definition an
    unsigned quantity.

    Example:
        >>> as_address_array([1, 2, 3]).dtype
        dtype('uint64')
    """
    if isinstance(addresses, np.ndarray):
        if addresses.dtype == _UINT64 and addresses.flags.c_contiguous:
            return addresses
        if np.issubdtype(addresses.dtype, np.signedinteger) and addresses.size and addresses.min() < 0:
            raise TraceFormatError("trace addresses must be non-negative")
        return np.ascontiguousarray(addresses, dtype=_UINT64)
    values = list(addresses)
    for value in values:
        if value < 0:
            raise TraceFormatError("trace addresses must be non-negative")
        if value >= 1 << 64:
            raise TraceFormatError("trace addresses must fit in 64 bits")
    return np.array(values, dtype=_UINT64)


def block_address(byte_addresses, block_bytes: int = DEFAULT_BLOCK_BYTES) -> np.ndarray:
    """Convert byte addresses to cache-block addresses (``addr // block``)."""
    array = as_address_array(byte_addresses)
    shift = int(block_bytes).bit_length() - 1
    if 1 << shift != block_bytes:
        raise TraceFormatError(f"block size must be a power of two, got {block_bytes}")
    return array >> np.uint64(shift)


def byte_address(block_addresses, block_bytes: int = DEFAULT_BLOCK_BYTES) -> np.ndarray:
    """Convert block addresses back to the byte address of the block start."""
    array = as_address_array(block_addresses)
    shift = int(block_bytes).bit_length() - 1
    if 1 << shift != block_bytes:
        raise TraceFormatError(f"block size must be a power of two, got {block_bytes}")
    return array << np.uint64(shift)


@dataclass(frozen=True)
class AddressTrace:
    """A finite sequence of 64-bit trace addresses.

    The class is a frozen value object: the underlying array is never
    mutated by library code, and helpers always return new arrays/traces.

    Attributes:
        addresses: The little-endian ``uint64`` address array.
        name: Optional label (benchmark name, workload id) used in reports.
    """

    addresses: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "addresses", as_address_array(self.addresses))

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return int(self.addresses.size)

    def __iter__(self) -> Iterator[int]:
        return iter(int(value) for value in self.addresses)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return AddressTrace(self.addresses[index], name=self.name)
        return int(self.addresses[index])

    def __eq__(self, other) -> bool:
        if not isinstance(other, AddressTrace):
            return NotImplemented
        return len(self) == len(other) and bool(np.array_equal(self.addresses, other.addresses))

    def __hash__(self) -> int:  # pragma: no cover - value object convenience
        return hash((self.name, self.addresses.tobytes()))

    # -- constructors --------------------------------------------------------------
    @classmethod
    def from_iterable(cls, addresses: Iterable[int], name: str = "") -> "AddressTrace":
        """Build a trace from any iterable of integer addresses."""
        return cls(as_address_array(addresses), name=name)

    @classmethod
    def empty(cls, name: str = "") -> "AddressTrace":
        """Return an empty trace (length zero)."""
        return cls(np.empty(0, dtype=_UINT64), name=name)

    # -- views ----------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the trace as little-endian 8-byte records."""
        return self.addresses.astype(_UINT64, copy=False).tobytes()

    def byte_columns(self) -> np.ndarray:
        """Return the ``(len, 8)`` array of the bytes of each address.

        Column ``j`` holds byte of order ``j`` (``j = 0`` is the least
        significant byte), matching the paper's ``b[j](k)`` notation.
        """
        return self.addresses.view(np.uint8).reshape(len(self), ADDRESS_BYTES)

    def intervals(self, length: int) -> Iterator["AddressTrace"]:
        """Yield consecutive sub-traces of ``length`` addresses.

        The final interval may be shorter when the trace length is not a
        multiple of ``length`` (the lossy codec handles that tail as its own
        interval, exactly like the streaming encoder does).
        """
        if length <= 0:
            raise TraceFormatError("interval length must be positive")
        for start in range(0, len(self), length):
            yield AddressTrace(self.addresses[start : start + length], name=self.name)

    def iter_chunks(self, chunk_addresses: int) -> Iterator[np.ndarray]:
        """Yield consecutive fixed-size ``uint64`` array views of the trace.

        This is the bridge into the streaming pipeline: the concatenation
        of the yielded chunks is byte-identical to ``self.addresses``, so
        feeding the chunks to any ``*_stream`` consumer produces exactly
        the same result as feeding the whole array at once.
        """
        from repro.core.stream import chunk_array

        return chunk_array(self.addresses, chunk_addresses)

    # -- statistics -----------------------------------------------------------------
    def distinct_addresses(self) -> int:
        """Number of distinct addresses (the trace's footprint in blocks)."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.addresses).size)

    def footprint_bytes(self, block_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
        """Footprint in bytes assuming each address names one cache block."""
        return self.distinct_addresses() * block_bytes

    def concat(self, other: "AddressTrace") -> "AddressTrace":
        """Return the concatenation of two traces (keeps ``self.name``)."""
        return AddressTrace(np.concatenate([self.addresses, other.addresses]), name=self.name)


def write_raw_trace(trace: Union[AddressTrace, np.ndarray, Sequence[int]], destination) -> int:
    """Write a trace as raw little-endian 64-bit values.

    Args:
        trace: Trace, array or sequence of addresses.
        destination: File path (``str``/``os.PathLike``) or binary file object.

    Returns:
        Number of bytes written.
    """
    if isinstance(trace, AddressTrace):
        payload = trace.to_bytes()
    else:
        payload = as_address_array(trace).tobytes()
    if hasattr(destination, "write"):
        destination.write(payload)
    else:
        with open(os.fspath(destination), "wb") as handle:
            handle.write(payload)
    return len(payload)


def read_raw_trace(source, name: str = "") -> AddressTrace:
    """Read a raw little-endian 64-bit trace from a path or file object.

    Raises:
        TraceFormatError: If the byte length is not a multiple of eight.
    """
    if hasattr(source, "read"):
        payload = source.read()
    else:
        with open(os.fspath(source), "rb") as handle:
            payload = handle.read()
    if len(payload) % ADDRESS_BYTES:
        raise TraceFormatError(
            f"raw trace length {len(payload)} is not a multiple of {ADDRESS_BYTES} bytes"
        )
    addresses = np.frombuffer(payload, dtype=_UINT64).copy()
    return AddressTrace(addresses, name=name)


def iter_raw_chunks(source, chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES) -> Iterator[np.ndarray]:
    """Stream fixed-size address chunks from a raw trace file.

    This is the bounded-memory entry of the streaming pipeline: the trace
    is read ``chunk_addresses`` records at a time (the final chunk may be
    shorter) and yielded as ``uint64`` arrays, so peak memory is one chunk
    regardless of the trace length.  The concatenated chunks are
    byte-identical to :func:`read_raw_trace` of the same source.

    Raises:
        TraceFormatError: If the stream ends with a partial 64-bit record.
    """
    chunk_addresses = check_chunk_addresses(chunk_addresses)
    handle = source
    opened = False
    if not hasattr(source, "read"):
        handle = open(os.fspath(source), "rb")
        opened = True
    try:
        pending = b""
        while True:
            payload = handle.read(chunk_addresses * ADDRESS_BYTES)
            if not payload:
                if pending:
                    raise TraceFormatError("raw trace ends with a partial 64-bit record")
                return
            if pending:
                payload = pending + payload
                pending = b""
            usable = len(payload) - (len(payload) % ADDRESS_BYTES)
            if usable != len(payload):
                # A short read split a record; keep the fragment for the
                # next round (pipes may deliver partial records mid-stream).
                pending = payload[usable:]
                payload = payload[:usable]
            if payload:
                yield np.frombuffer(payload, dtype=_UINT64)
    finally:
        if opened:
            handle.close()


def iter_raw_addresses(source, chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES) -> Iterator[int]:
    """Stream addresses from a raw trace without loading it fully in memory.

    This is the reading loop of the paper's ``bin2atc`` example program
    (Figure 6): read 8 bytes at a time from a file-like object and yield
    each 64-bit value.  Reading is chunked for speed (see
    :func:`iter_raw_chunks` for the bulk variant the streaming pipeline
    uses).
    """
    for chunk in iter_raw_chunks(source, chunk_addresses):
        for value in chunk:
            yield int(value)


def _ensure_binary_stream(obj) -> io.BufferedIOBase:  # pragma: no cover - helper for CLI
    if isinstance(obj, io.BufferedIOBase):
        return obj
    raise TraceFormatError("expected a binary stream")
