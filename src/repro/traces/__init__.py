"""Trace substrate: trace types, synthetic workloads and the cache filter."""

from repro.traces.filter import (
    PAPER_L1_CONFIG,
    CacheFilter,
    FilterResult,
    StreamingCacheFilter,
    filter_reference_stream,
    filtered_spec_like_trace,
    iter_filtered_spec_like_chunks,
)
from repro.traces.multicore import (
    interleave_round_robin,
    interleave_weighted,
    iter_interleave_round_robin,
    iter_interleave_weighted,
    merge_traces,
    split_by_core,
)
from repro.traces.records import RecordKind, tag_addresses, untag_addresses
from repro.traces.spec_like import (
    SPEC_LIKE_NAMES,
    SpecLikeWorkload,
    generate_reference_stream,
    get_workload,
    spec_like_suite,
)
from repro.traces.synthetic import ReferenceStream
from repro.traces.trace import (
    ADDRESS_BYTES,
    AddressTrace,
    as_address_array,
    block_address,
    byte_address,
    iter_raw_addresses,
    iter_raw_chunks,
    read_raw_trace,
    write_raw_trace,
)

__all__ = [
    "ADDRESS_BYTES",
    "AddressTrace",
    "as_address_array",
    "block_address",
    "byte_address",
    "read_raw_trace",
    "write_raw_trace",
    "iter_raw_addresses",
    "iter_raw_chunks",
    "ReferenceStream",
    "SpecLikeWorkload",
    "SPEC_LIKE_NAMES",
    "spec_like_suite",
    "get_workload",
    "generate_reference_stream",
    "CacheFilter",
    "StreamingCacheFilter",
    "FilterResult",
    "PAPER_L1_CONFIG",
    "filter_reference_stream",
    "filtered_spec_like_trace",
    "iter_filtered_spec_like_chunks",
    "RecordKind",
    "tag_addresses",
    "untag_addresses",
    "interleave_round_robin",
    "interleave_weighted",
    "iter_interleave_round_robin",
    "iter_interleave_weighted",
    "merge_traces",
    "split_by_core",
]
