"""The workload zoo: registered multi-core mixes and kernel-style patterns.

Where :mod:`repro.traces.spec_like` models the paper's 22 single-program
SPEC CPU2006 analogues, the zoo registers the *scenario* workloads used by
modern memory-system studies (see SNIPPETS.md and ``docs/workloads.md``):

* ``mix1`` .. ``mix7`` — four-core SPEC-CPU2017-like mixes with the
  per-core compositions of the DRAM-bandwidth study the snippets quote
  (e.g. mix1 = imagick + sssp + stream_add + mcf).  Cores run in their own
  address-space slice and their reference streams are interleaved
  round-robin, one reference per core per turn.
* ``gap.bfs`` / ``gap.sssp`` / ``gap.cc`` — GAP-benchmark-like graph
  traversals (frontier scans + pointer chasing over large node arrays).
* ``stream.add`` / ``stream.copy`` / ``stream.scale`` / ``stream.triad``
  — STREAM-kernel-like lock-step array sweeps (3, 2, 2 and 3 arrays).

Every zoo entry wraps a regular :class:`SpecLikeWorkload`, and
:func:`repro.traces.spec_like.get_workload` falls back to this registry, so
zoo names work everywhere a spec-like name does — ``repro sweep`` specs,
the analysis harness, ``repro bench --workload`` — with no runner changes.

The per-core compositions follow the quoted study; the *measured* MPKI of
our synthetic analogues does not reproduce that study's mix1→mix7 MPKI
ordering (which reflects real-application intensities), so
``docs/workloads.md`` documents the qualitative bands measured here
instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.traces import synthetic
from repro.traces.spec_like import SpecLikeWorkload, get_workload

__all__ = [
    "ZooWorkload",
    "ZOO_NAMES",
    "zoo_suite",
    "get_zoo_workload",
    "find_zoo_workload",
    "zoo_sweep_spec",
    "measure_mpki",
]

#: Address-space slice of each core in a mix (keeps per-core streams
#: disjoint while staying far below the 2**58 block-address tag limit).
_CORE_STRIDE = 1 << 40

_Builder = Callable[[int, int], np.ndarray]


# ---------------------------------------------------------------------------
# component streams (single-core byte-address builders)
# ---------------------------------------------------------------------------
def _imagick(length: int, seed: int) -> np.ndarray:
    # Blocked image filters: a tiny tile that fits the L1 -> near-zero MPKI.
    return synthetic.loop_nest(length, base=0x1100_0000, rows=48, cols=48, element_bytes=8)


def _leela(length: int, seed: int) -> np.ndarray:
    # Go tree search: small hot board state, cache-resident.
    return synthetic.random_working_set(length, working_set_blocks=400, base=0x1200_0000, seed=seed)


def _deepsjeng(length: int, seed: int) -> np.ndarray:
    # Chess: transposition-table probes over a table larger than the L1.
    return synthetic.random_working_set(
        length, working_set_blocks=20_000, base=0x1300_0000, seed=seed
    )


def _sssp(length: int, seed: int) -> np.ndarray:
    # Delta-stepping SSSP: distance-array pointer chasing + bucket scans.
    return synthetic.phased_stream(
        [
            synthetic.pointer_chase(
                max(length // 2, 1), num_nodes=150_000, base=0x1400_0000, seed=seed
            ),
            synthetic.random_working_set(
                max(length - length // 2, 1),
                working_set_blocks=60_000,
                base=0x1500_0000,
                seed=seed + 1,
            ),
        ]
    )[:length]


def _bfs(length: int, seed: int) -> np.ndarray:
    # Top-down BFS: sequential frontier scans + random neighbour visits.
    return synthetic.phased_stream(
        [
            synthetic.sequential_stream(max(length // 2, 1), base=0x1600_0000, stride=64),
            synthetic.random_working_set(
                max(length - length // 2, 1),
                working_set_blocks=100_000,
                base=0x1700_0000,
                seed=seed,
            ),
        ]
    )[:length]


def _cc(length: int, seed: int) -> np.ndarray:
    # Connected components: label propagation = edge scans + label chasing.
    return synthetic.phased_stream(
        [
            synthetic.strided_stream(
                max(length // 2, 1), base=0x1800_0000, stride=64, wrap_bytes=1 << 24
            ),
            synthetic.pointer_chase(
                max(length - length // 2, 1), num_nodes=80_000, base=0x1900_0000, seed=seed
            ),
        ]
    )[:length]


def _stream_kernel(bases: Tuple[int, ...]) -> _Builder:
    def build(length: int, seed: int) -> np.ndarray:
        return synthetic.multi_stream(length, bases=list(bases), stride=8)

    return build


_stream_add = _stream_kernel((0x2000_0000, 0x2400_0000, 0x2800_0000))
_stream_copy = _stream_kernel((0x3000_0000, 0x3400_0000))
_stream_scale = _stream_kernel((0x4000_0000, 0x4400_0000))
_stream_triad = _stream_kernel((0x5000_0000, 0x5400_0000, 0x5800_0000))


def _spec2006(name: str) -> _Builder:
    """Reuse a SPEC-CPU2006-like builder for its 2017 counterpart."""

    def build(length: int, seed: int) -> np.ndarray:
        return get_workload(name).build_data(length, seed)

    return build


#: Component name -> single-core byte-address builder.
_COMPONENTS: Dict[str, _Builder] = {
    "imagick": _imagick,
    "leela": _leela,
    "deepsjeng": _deepsjeng,
    "sssp": _sssp,
    "bfs": _bfs,
    "cc": _cc,
    "mcf": _spec2006("429.mcf"),
    "lbm": _spec2006("470.lbm"),
    "omnetpp": _spec2006("471.omnetpp"),
    "stream_add": _stream_add,
    "stream_copy": _stream_copy,
    "stream_scale": _stream_scale,
    "stream_triad": _stream_triad,
}

#: Per-core composition of the seven mixes (the quoted study's Table).
_MIXES: Tuple[Tuple[str, Tuple[str, str, str, str]], ...] = (
    ("mix1", ("imagick", "sssp", "stream_add", "mcf")),
    ("mix2", ("leela", "deepsjeng", "omnetpp", "stream_copy")),
    ("mix3", ("sssp", "bfs", "stream_scale", "lbm")),
    ("mix4", ("bfs", "stream_add", "mcf", "lbm")),
    ("mix5", ("bfs", "mcf", "stream_triad", "lbm")),
    ("mix6", ("sssp", "stream_scale", "stream_triad", "stream_copy")),
    ("mix7", ("mcf", "stream_triad", "lbm", "stream_copy")),
)


def _interleave_cores(parts: List[np.ndarray]) -> np.ndarray:
    """Round-robin interleave per-core streams element by element."""
    total = sum(int(part.size) for part in parts)
    out = np.empty(total, dtype=np.uint64)
    cores = len(parts)
    for core, part in enumerate(parts):
        out[core::cores] = part
    return out


def _mix_builder(components: Tuple[str, ...]) -> _Builder:
    def build(length: int, seed: int) -> np.ndarray:
        cores = len(components)
        parts = []
        for core, component in enumerate(components):
            core_length = len(range(core, length, cores))
            if core_length == 0:
                parts.append(np.empty(0, dtype=np.uint64))
                continue
            data = _COMPONENTS[component](core_length, seed + core)
            parts.append(
                (data + np.uint64(core * _CORE_STRIDE)).astype(np.uint64)
            )
        return _interleave_cores(parts)

    return build


@dataclass(frozen=True)
class ZooWorkload:
    """One registered zoo scenario (catalog entry + runnable workload).

    Attributes:
        workload: The wrapped :class:`SpecLikeWorkload` (name, builder).
        family: Pattern family — ``"mix"``, ``"gap"`` or ``"stream"``.
        cores: Modelled core count (1 for single-kernel entries).
        components: Per-core component names (mixes) or the kernel name.
    """

    workload: SpecLikeWorkload
    family: str
    cores: int
    components: Tuple[str, ...]

    @property
    def name(self) -> str:
        """Registry name (``"mix3"``, ``"gap.bfs"``, ``"stream.add"``)."""
        return self.workload.name

    @property
    def description(self) -> str:
        """One-line description shown by ``repro zoo``."""
        return self.workload.description


def _single(name: str, component: str, family: str, description: str) -> ZooWorkload:
    return ZooWorkload(
        workload=SpecLikeWorkload(
            name=name,
            description=description,
            build_data=_COMPONENTS[component],
            stability="mixed" if family == "gap" else "stable",
        ),
        family=family,
        cores=1,
        components=(component,),
    )


def _build_registry() -> Dict[str, ZooWorkload]:
    registry: Dict[str, ZooWorkload] = {}
    for name, components in _MIXES:
        registry[name] = ZooWorkload(
            workload=SpecLikeWorkload(
                name=name,
                description="4-core SPEC-2017-like mix: " + " + ".join(components),
                build_data=_mix_builder(components),
                stability="mixed",
            ),
            family="mix",
            cores=4,
            components=components,
        )
    registry["gap.bfs"] = _single(
        "gap.bfs", "bfs", "gap", "GAP-like BFS: frontier scans + random neighbour visits"
    )
    registry["gap.sssp"] = _single(
        "gap.sssp", "sssp", "gap", "GAP-like SSSP: pointer chasing + bucket working set"
    )
    registry["gap.cc"] = _single(
        "gap.cc", "cc", "gap", "GAP-like connected components: edge scans + label chasing"
    )
    registry["stream.add"] = _single(
        "stream.add", "stream_add", "stream", "STREAM add: a[i] = b[i] + c[i] over three arrays"
    )
    registry["stream.copy"] = _single(
        "stream.copy", "stream_copy", "stream", "STREAM copy: a[i] = b[i] over two arrays"
    )
    registry["stream.scale"] = _single(
        "stream.scale", "stream_scale", "stream", "STREAM scale: a[i] = q * b[i] over two arrays"
    )
    registry["stream.triad"] = _single(
        "stream.triad", "stream_triad", "stream", "STREAM triad: a[i] = b[i] + q * c[i]"
    )
    return registry


_REGISTRY: Dict[str, ZooWorkload] = _build_registry()

#: Zoo workload names, mixes first, then GAP-like, then STREAM-like.
ZOO_NAMES: Tuple[str, ...] = tuple(_REGISTRY)


def zoo_suite() -> List[ZooWorkload]:
    """Return every zoo entry, in :data:`ZOO_NAMES` order.

    Example:
        >>> len(zoo_suite()) >= 10
        True
    """
    return [_REGISTRY[name] for name in ZOO_NAMES]


def get_zoo_workload(name: str) -> ZooWorkload:
    """Look up one zoo entry by name.

    Example:
        >>> get_zoo_workload("mix1").components[0]
        'imagick'
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown zoo workload {name!r}; registered: {list(ZOO_NAMES)}"
        ) from None


def find_zoo_workload(name: str) -> Optional[SpecLikeWorkload]:
    """Resolve a zoo name to its runnable workload, or ``None``.

    This is the :func:`repro.traces.spec_like.get_workload` fallback hook —
    it never raises, so unknown names still produce the spec-like error.
    """
    entry = _REGISTRY.get(name)
    return entry.workload if entry is not None else None


def zoo_sweep_spec(
    references: Optional[int] = None,
    codecs: Tuple[str, ...] = ("lossless",),
    names: Optional[Tuple[str, ...]] = None,
    name: str = "workload-zoo",
):
    """Build a :class:`repro.experiments.spec.SweepSpec` over the zoo grid.

    Args:
        references: Per-workload reference count (``None`` inherits the
            sweep scale's default).
        codecs: Codec kinds, one column per kind.
        names: Zoo subset (default: every registered workload).
        name: Sweep name used in reports and the result cache.

    Example:
        >>> spec = zoo_sweep_spec(references=2000)
        >>> spec.num_units >= 10
        True
    """
    from repro.experiments.spec import CodecSpec, SweepSpec, WorkloadSpec

    selected = ZOO_NAMES if names is None else tuple(names)
    for entry in selected:
        get_zoo_workload(entry)  # validate early, with the zoo's error
    return SweepSpec(
        name=name,
        workloads=tuple(WorkloadSpec(n, references=references) for n in selected),
        codecs=tuple(CodecSpec(kind=kind) for kind in codecs),
    )


def measure_mpki(name: str, references: int = 20_000, seed: int = 0) -> float:
    """Misses per kilo-reference of a zoo (or spec-like) workload.

    Filters the workload's combined instruction+data stream through the
    paper's L1 pair and reports ``1000 * misses / references`` — the
    qualitative intensity measure behind the ``docs/workloads.md`` bands.

    Example:
        >>> measure_mpki("stream.copy", references=4000) < measure_mpki(
        ...     "gap.sssp", references=4000)
        True
    """
    from repro.traces.filter import filter_reference_stream
    from repro.traces.spec_like import generate_reference_stream

    stream = generate_reference_stream(name, references, seed=seed)
    result = filter_reference_stream(stream)
    return 1000.0 * len(result.trace) / max(result.total_references, 1)
