"""Synthetic memory reference stream generators.

The paper traces 22 SPEC CPU2006 benchmarks with Pin.  Neither SPEC nor Pin
is available here, so this module provides the *substitute substrate*: a set
of parametrised generators producing byte-address reference streams with the
qualitative behaviours the paper's evaluation depends on:

* **streaming / strided** access (410.bwaves-, 433.milc-, 470.lbm-like):
  large arrays swept with unit or constant stride, extremely regular once
  cache-filtered;
* **loop nests** over multi-dimensional arrays (row/column sweeps);
* **random access inside a working set** (429.mcf-, 471.omnetpp-like):
  hard to compress losslessly but statistically stationary, the motivating
  case of Section 5;
* **pointer chasing** over a fixed random permutation (linked-list style);
* **GUPS-style updates** over a huge table (essentially incompressible);
* **stack-like** accesses with geometric depth distribution;
* **phased** workloads that switch between sub-behaviours, exercising the
  chunk reuse and byte-translation machinery (Figures 4 and 5).

Every generator is deterministic given its ``seed`` and returns a NumPy
``uint64`` array of *byte* addresses.  :class:`ReferenceStream` pairs the
data stream with a matching instruction-fetch stream so the L1I/L1D filter
front-end (:mod:`repro.traces.filter`) can reproduce the paper's setup of
instrumenting "all basic blocks and all instructions accessing memory".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.trace import as_address_array, check_chunk_addresses

__all__ = [
    "ReferenceStream",
    "sequential_stream",
    "strided_stream",
    "multi_stream",
    "loop_nest",
    "random_working_set",
    "pointer_chase",
    "gups_updates",
    "stack_accesses",
    "phased_stream",
    "region_mixture",
    "code_stream",
    "make_reference_stream",
]

_U64 = np.uint64


@dataclass(frozen=True)
class ReferenceStream:
    """A combined instruction + data reference stream.

    Attributes:
        addresses: Byte addresses in program order.
        is_instruction: Boolean mask, ``True`` for instruction fetches.
        name: Label of the workload that generated the stream.
        is_write: Optional boolean mask, ``True`` for data writes (stores).
            Defaults to all-reads; instruction fetches are never writes.
            Used by the cache filter's write-back mode.
    """

    addresses: np.ndarray
    is_instruction: np.ndarray
    name: str = ""
    is_write: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "addresses", as_address_array(self.addresses))
        mask = np.asarray(self.is_instruction, dtype=bool)
        if mask.shape != self.addresses.shape:
            raise ConfigurationError("is_instruction mask must match addresses length")
        object.__setattr__(self, "is_instruction", mask)
        if self.is_write is None:
            write_mask = np.zeros(self.addresses.shape, dtype=bool)
        else:
            write_mask = np.asarray(self.is_write, dtype=bool)
            if write_mask.shape != self.addresses.shape:
                raise ConfigurationError("is_write mask must match addresses length")
            if bool((write_mask & mask).any()):
                raise ConfigurationError("instruction fetches cannot be writes")
        object.__setattr__(self, "is_write", write_mask)

    def __len__(self) -> int:
        return int(self.addresses.size)

    def iter_chunks(self, chunk_addresses: int) -> Iterator["ReferenceStream"]:
        """Yield consecutive fixed-size sub-streams (views, no copies).

        This is the entry of the streaming cache-filter pipeline: filtering
        the yielded chunks in order through one stateful filter produces a
        miss trace byte-identical to filtering the whole stream at once
        (the final chunk may be shorter than ``chunk_addresses``).
        """
        chunk_addresses = check_chunk_addresses(chunk_addresses)
        for start in range(0, len(self), chunk_addresses):
            stop = start + chunk_addresses
            yield ReferenceStream(
                self.addresses[start:stop],
                self.is_instruction[start:stop],
                name=self.name,
                is_write=self.is_write[start:stop],
            )

    @property
    def data_addresses(self) -> np.ndarray:
        """Byte addresses of data references only."""
        return self.addresses[~self.is_instruction]

    @property
    def instruction_addresses(self) -> np.ndarray:
        """Byte addresses of instruction fetches only."""
        return self.addresses[self.is_instruction]

    @property
    def write_addresses(self) -> np.ndarray:
        """Byte addresses of data writes only."""
        return self.addresses[self.is_write]


def _check_positive(name: str, value: int) -> int:
    value = int(value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


# ---------------------------------------------------------------------------
# data-access primitives
# ---------------------------------------------------------------------------
def sequential_stream(length: int, base: int = 0x1000_0000, stride: int = 8) -> np.ndarray:
    """Unit/constant-stride sweep: address ``k`` is ``base + k * stride``."""
    length = _check_positive("length", length)
    if stride <= 0:
        raise ConfigurationError("stride must be positive")
    return (np.uint64(base) + np.arange(length, dtype=np.uint64) * np.uint64(stride)).astype(_U64)


def strided_stream(
    length: int,
    base: int = 0x2000_0000,
    stride: int = 256,
    wrap_bytes: Optional[int] = None,
) -> np.ndarray:
    """Constant-stride sweep that optionally wraps around a region.

    With ``wrap_bytes`` set, the stream repeatedly sweeps the region
    ``[base, base + wrap_bytes)`` with the given stride, which after cache
    filtering produces the periodic miss pattern typical of blocked numeric
    kernels.
    """
    length = _check_positive("length", length)
    offsets = np.arange(length, dtype=np.uint64) * np.uint64(stride)
    if wrap_bytes is not None:
        offsets = offsets % np.uint64(wrap_bytes)
    return (np.uint64(base) + offsets).astype(_U64)


def multi_stream(
    length: int,
    bases: Sequence[int],
    stride: int = 8,
) -> np.ndarray:
    """Interleave several concurrent sequential streams (A[i]=B[i]+C[i] style).

    Reference ``k`` touches stream ``k % len(bases)`` at element
    ``k // len(bases)``, matching the access pattern of a vector kernel that
    reads/writes several arrays in lock step.
    """
    length = _check_positive("length", length)
    if not bases:
        raise ConfigurationError("multi_stream needs at least one base")
    bases_array = as_address_array(list(bases))
    lanes = len(bases)
    k = np.arange(length, dtype=np.uint64)
    lane = (k % np.uint64(lanes)).astype(np.int64)
    element = k // np.uint64(lanes)
    return (bases_array[lane] + element * np.uint64(stride)).astype(_U64)


def loop_nest(
    length: int,
    base: int = 0x3000_0000,
    rows: int = 256,
    cols: int = 256,
    element_bytes: int = 8,
    column_major: bool = False,
) -> np.ndarray:
    """Repeated traversal of a ``rows x cols`` matrix.

    ``column_major=False`` walks the matrix row by row (stride-1, very
    regular); ``column_major=True`` walks it column by column (large
    stride), the classic poor-locality loop nest.
    The traversal repeats until ``length`` references are produced.
    """
    length = _check_positive("length", length)
    rows = _check_positive("rows", rows)
    cols = _check_positive("cols", cols)
    row_index, col_index = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    if column_major:
        order = np.argsort(col_index.ravel() * rows + row_index.ravel(), kind="stable")
    else:
        order = np.arange(rows * cols)
    offsets = (row_index.ravel()[order] * cols + col_index.ravel()[order]) * element_bytes
    offsets = offsets.astype(np.uint64)
    repeats = -(-length // offsets.size)  # ceil division
    tiled = np.tile(offsets, repeats)[:length]
    return (np.uint64(base) + tiled).astype(_U64)


def random_working_set(
    length: int,
    working_set_blocks: int,
    base: int = 0x4000_0000,
    block_bytes: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """Uniformly random accesses inside a fixed working set.

    This is the paper's motivating example for the myopic interval problem
    (Section 5): "a loop accessing an array in a completely random fashion";
    the addresses look random but the miss ratio of a C-entry cache is close
    to ``1 - C/N``.
    """
    length = _check_positive("length", length)
    working_set_blocks = _check_positive("working_set_blocks", working_set_blocks)
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, working_set_blocks, size=length, dtype=np.uint64)
    return (np.uint64(base) + picks * np.uint64(block_bytes)).astype(_U64)


def pointer_chase(
    length: int,
    num_nodes: int,
    base: int = 0x5000_0000,
    node_bytes: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """Traversal of a random circular linked list of ``num_nodes`` nodes.

    The successor of each node is a fixed random permutation, so the access
    sequence is deterministic but has essentially no spatial locality,
    mimicking mcf/omnetpp-style pointer chasing.
    """
    length = _check_positive("length", length)
    num_nodes = _check_positive("num_nodes", num_nodes)
    rng = np.random.default_rng(seed)
    successor = rng.permutation(num_nodes)
    node = 0
    nodes = np.empty(length, dtype=np.uint64)
    for k in range(length):
        nodes[k] = node
        node = int(successor[node])
    return (np.uint64(base) + nodes * np.uint64(node_bytes)).astype(_U64)


def gups_updates(
    length: int,
    table_bytes: int = 1 << 26,
    base: int = 0x6000_0000,
    seed: int = 0,
) -> np.ndarray:
    """GUPS-style random updates over a large table (nearly incompressible)."""
    length = _check_positive("length", length)
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, table_bytes // 8, size=length, dtype=np.uint64) * np.uint64(8)
    return (np.uint64(base) + offsets).astype(_U64)


def stack_accesses(
    length: int,
    base: int = 0x7FFF_0000,
    max_depth_bytes: int = 16384,
    seed: int = 0,
) -> np.ndarray:
    """Stack-like accesses: offsets drawn from a geometric depth distribution.

    Most references stay near the top of the stack (hot frames), a tail goes
    deeper — a simple model of call-heavy integer codes.
    """
    length = _check_positive("length", length)
    rng = np.random.default_rng(seed)
    depth = rng.geometric(p=0.02, size=length) * 8
    depth = np.minimum(depth, max_depth_bytes).astype(np.uint64)
    return (np.uint64(base) - depth).astype(_U64)


def phased_stream(segments: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate segments produced by other generators into a phased stream."""
    if not segments:
        raise ConfigurationError("phased_stream needs at least one segment")
    return np.concatenate([as_address_array(segment) for segment in segments]).astype(_U64)


def region_mixture(
    length: int,
    regions: Sequence[Tuple[int, int]],
    weights: Optional[Sequence[float]] = None,
    block_bytes: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """Random accesses over several regions with given selection weights.

    Args:
        length: Number of references.
        regions: Sequence of ``(base, size_bytes)`` pairs.
        weights: Probability of touching each region (uniform by default).
        block_bytes: Access granularity inside a region.
        seed: RNG seed.
    """
    length = _check_positive("length", length)
    if not regions:
        raise ConfigurationError("region_mixture needs at least one region")
    rng = np.random.default_rng(seed)
    if weights is None:
        probabilities = np.full(len(regions), 1.0 / len(regions))
    else:
        weight_array = np.asarray(weights, dtype=float)
        if weight_array.size != len(regions) or weight_array.sum() <= 0:
            raise ConfigurationError("weights must match regions and sum to a positive value")
        probabilities = weight_array / weight_array.sum()
    region_ids = rng.choice(len(regions), size=length, p=probabilities)
    addresses = np.empty(length, dtype=np.uint64)
    for region_id, (region_base, region_size) in enumerate(regions):
        mask = region_ids == region_id
        count = int(mask.sum())
        if count == 0:
            continue
        blocks = rng.integers(0, max(region_size // block_bytes, 1), size=count, dtype=np.uint64)
        addresses[mask] = np.uint64(region_base) + blocks * np.uint64(block_bytes)
    return addresses


# ---------------------------------------------------------------------------
# instruction-fetch stream and combination
# ---------------------------------------------------------------------------
def code_stream(
    length: int,
    code_base: int = 0x0040_0000,
    hot_code_bytes: int = 8192,
    cold_code_bytes: int = 262144,
    cold_fraction: float = 0.02,
    basic_block_bytes: int = 32,
    seed: int = 0,
) -> np.ndarray:
    """Synthetic instruction-fetch stream.

    Fetches walk sequentially through basic blocks whose start addresses are
    mostly drawn from a small hot region (loop bodies) with an occasional
    jump into a larger cold region (rarely executed code), a minimal model of
    real instruction streams that keeps the L1I filter busy without
    dominating the filtered trace.
    """
    length = _check_positive("length", length)
    rng = np.random.default_rng(seed)
    instructions_per_block = max(basic_block_bytes // 4, 1)
    num_blocks = -(-length // instructions_per_block)
    is_cold = rng.random(num_blocks) < cold_fraction
    hot_starts = rng.integers(0, max(hot_code_bytes // basic_block_bytes, 1), size=num_blocks)
    cold_starts = rng.integers(0, max(cold_code_bytes // basic_block_bytes, 1), size=num_blocks)
    block_index = np.where(is_cold, cold_starts + hot_code_bytes // basic_block_bytes, hot_starts)
    starts = np.uint64(code_base) + block_index.astype(np.uint64) * np.uint64(basic_block_bytes)
    fetch_offsets = (np.arange(instructions_per_block, dtype=np.uint64) * np.uint64(4))
    addresses = (starts[:, None] + fetch_offsets[None, :]).reshape(-1)[:length]
    return addresses.astype(_U64)


def make_reference_stream(
    data_addresses: np.ndarray,
    name: str = "",
    instruction_ratio: float = 1.0,
    code_kwargs: Optional[dict] = None,
    seed: int = 0,
    write_fraction: float = 0.0,
) -> ReferenceStream:
    """Interleave a data stream with a synthetic instruction stream.

    Args:
        data_addresses: Byte addresses of the data references.
        name: Workload label.
        instruction_ratio: Number of instruction fetches per data reference
            (1.0 reproduces the common ~1 memory access per 2-3 instructions
            rule of thumb without bloating the stream).
        code_kwargs: Extra arguments forwarded to :func:`code_stream`.
        seed: RNG seed for the instruction stream.
        write_fraction: Fraction of data references marked as writes
            (stores), drawn uniformly at random; used by the cache filter's
            write-back mode.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must lie in [0, 1]")
    data_addresses = as_address_array(data_addresses)
    num_data = int(data_addresses.size)
    num_code = int(round(num_data * instruction_ratio))
    kwargs = dict(code_kwargs or {})
    kwargs.setdefault("seed", seed)
    code_addresses = code_stream(max(num_code, 1), **kwargs)[:num_code]
    total = num_data + num_code
    addresses = np.empty(total, dtype=np.uint64)
    is_instruction = np.zeros(total, dtype=bool)
    rng = np.random.default_rng(seed + 7)
    data_is_write = rng.random(num_data) < write_fraction
    if num_code == 0:
        addresses[:] = data_addresses
        return ReferenceStream(addresses, is_instruction, name=name, is_write=data_is_write)
    # Interleave proportionally: place instruction fetches at evenly spaced
    # positions so the two streams mix like a real fetch/execute interleaving.
    positions = np.linspace(0, total - 1, num_code).astype(np.int64)
    positions = np.unique(positions)
    while positions.size < num_code:
        extra = np.setdiff1d(np.arange(total, dtype=np.int64), positions)[: num_code - positions.size]
        positions = np.sort(np.concatenate([positions, extra]))
    is_instruction[positions] = True
    addresses[is_instruction] = code_addresses
    addresses[~is_instruction] = data_addresses
    is_write = np.zeros(total, dtype=bool)
    is_write[~is_instruction] = data_is_write
    return ReferenceStream(addresses, is_instruction, name=name, is_write=is_write)
