"""The ATC command/cycle sidecar: ``SIDECAR.bz2`` inside a container.

The ATC container stores bare 64-bit values (paper, Section 2), so a
conversion from a format with command and cycle columns (k6, mase) would
lose them.  ``repro convert`` therefore writes a *sidecar* file next to the
chunk files, streamed in lock-step with the encoder so conversions stay
flat-memory.  Containers without a sidecar (made by ``bin2atc``) export
with synthesized defaults instead.

On-disk layout (byte-level; also documented in ``docs/trace-formats.md``):
the file ``SIDECAR.bz2`` is a bz2 stream — always bz2, independent of the
container backend, so the reader needs no metadata — whose decompressed
bytes are the 8-byte magic ``ATCSIDE1`` followed by zero or more frames:

====================  =========================================================
``u32 count``         little-endian record count of the frame (>= 1)
``count  u8 kinds``   record-kind codes (0 read, 1 write, 2 ifetch)
``count u64 deltas``  little-endian cycle deltas, modulo 2**64
====================  =========================================================

Cycle reconstruction: the running cycle starts at 0 and each record's cycle
is ``previous + delta (mod 2**64)``, carried *across* frames.  Deltas in
two's-complement modulo arithmetic make the encoding exact for any
``uint64`` cycle sequence, including non-monotonic ones.  The total record
count over all frames equals the container's ``original_length``.

The filename is safe by construction: container chunk enumeration matches
``^(\\d+)\\.<suffix>$`` and metadata lives in ``INFO.*``, so ``SIDECAR.bz2``
is invisible to the decoder while still counting toward
``total_bytes()`` — sidecar bytes honestly inflate bits-per-address.
"""

from __future__ import annotations

import bz2
import os
import struct
from pathlib import Path
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import TraceFormatError
from repro.traces.formats.base import KIND_IFETCH

__all__ = [
    "SIDECAR_MAGIC",
    "SIDECAR_BASENAME",
    "SidecarWriter",
    "SidecarReader",
    "SyntheticSidecar",
    "sidecar_path",
    "has_sidecar",
]

#: Magic bytes opening the decompressed sidecar stream.
SIDECAR_MAGIC = b"ATCSIDE1"

#: Filename of the sidecar inside a container directory.
SIDECAR_BASENAME = "SIDECAR.bz2"

_COUNT = struct.Struct("<I")
_U64 = np.dtype("<u8")


def sidecar_path(directory) -> Path:
    """Path of the (possibly absent) sidecar of a container directory."""
    return Path(os.fspath(directory)) / SIDECAR_BASENAME


def has_sidecar(directory) -> bool:
    """True when the container directory carries a command/cycle sidecar."""
    return sidecar_path(directory).is_file()


class SidecarWriter:
    """Streaming sidecar writer: one frame per appended record chunk.

    Append order must match the address order fed to the encoder; the
    converter guarantees that by teeing both from the same record chunks.

    Example:
        >>> import tempfile, numpy as np, os
        >>> path = os.path.join(tempfile.mkdtemp(), "SIDECAR.bz2")
        >>> with SidecarWriter(path) as writer:
        ...     writer.append(np.zeros(2, np.uint8), np.array([5, 9], np.uint64))
        >>> with SidecarReader(path) as reader:
        ...     kinds, cycles = reader.take(2)
        >>> cycles.tolist()
        [5, 9]
    """

    def __init__(self, path) -> None:
        # compresslevel selects the bz2 block size (N x 100 kB) and with it
        # the compressor's ~8 x block fixed memory; the kind/delta stream is
        # so repetitive that level 1 compresses it essentially as well as
        # level 9 while keeping the converter's footprint ~1 MB, not ~8 MB.
        self._handle = bz2.BZ2File(os.fspath(path), "wb", compresslevel=1)
        self._handle.write(SIDECAR_MAGIC)
        self._last_cycle = np.uint64(0)
        self.records_written = 0

    def append(self, kinds: np.ndarray, cycles: np.ndarray) -> None:
        """Write one frame for a chunk of parallel kind/cycle arrays."""
        kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        cycles = np.ascontiguousarray(cycles, dtype=_U64)
        if kinds.shape != cycles.shape:
            raise TraceFormatError("sidecar kinds and cycles must have equal length")
        if kinds.size == 0:
            return
        if int(kinds.max()) > KIND_IFETCH:
            raise TraceFormatError("sidecar kinds must be 0..2")
        previous = np.empty_like(cycles)
        previous[0] = self._last_cycle
        previous[1:] = cycles[:-1]
        deltas = cycles - previous  # uint64 arithmetic wraps mod 2**64
        self._handle.write(_COUNT.pack(kinds.size))
        self._handle.write(kinds.tobytes())
        self._handle.write(deltas.tobytes())
        self._last_cycle = np.uint64(cycles[-1])
        self.records_written += int(kinds.size)

    def close(self) -> None:
        """Flush and close the compressed stream."""
        self._handle.close()

    def __enter__(self) -> "SidecarWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SidecarReader:
    """Streaming sidecar reader with re-chunking (:meth:`take`).

    Frames are read lazily and re-split to whatever chunk boundaries the
    exporting decoder produces, so the export path never materialises the
    whole kind/cycle stream.
    """

    def __init__(self, path) -> None:
        self._handle = bz2.BZ2File(os.fspath(path), "rb")
        magic = self._handle.read(len(SIDECAR_MAGIC))
        if magic != SIDECAR_MAGIC:
            raise TraceFormatError(
                f"bad sidecar magic {magic!r} (expected {SIDECAR_MAGIC!r})"
            )
        self._last_cycle = np.uint64(0)
        self._kinds = np.empty(0, dtype=np.uint8)
        self._cycles = np.empty(0, dtype=_U64)

    def _read_exact(self, size: int) -> Optional[bytes]:
        """Read exactly ``size`` bytes, ``None`` at a clean end-of-stream."""
        payload = self._handle.read(size)
        if not payload:
            return None
        while len(payload) < size:
            more = self._handle.read(size - len(payload))
            if not more:
                raise TraceFormatError("sidecar stream is truncated mid-frame")
            payload += more
        return payload

    def _load_frame(self) -> bool:
        """Decode the next frame into the buffer; False at end-of-stream."""
        header = self._read_exact(_COUNT.size)
        if header is None:
            return False
        (count,) = _COUNT.unpack(header)
        if count == 0:
            raise TraceFormatError("sidecar frames must hold at least one record")
        body = self._read_exact(count + 8 * count)
        if body is None:
            raise TraceFormatError("sidecar stream is truncated mid-frame")
        kinds = np.frombuffer(body, dtype=np.uint8, count=count)
        deltas = np.frombuffer(body, dtype=_U64, count=count, offset=count)
        cycles = np.cumsum(deltas, dtype=np.uint64) + self._last_cycle
        self._last_cycle = np.uint64(cycles[-1])
        self._kinds = np.concatenate([self._kinds, kinds])
        self._cycles = np.concatenate([self._cycles, cycles])
        return True

    def take(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the next ``count`` (kinds, cycles) records.

        Raises:
            TraceFormatError: If the sidecar holds fewer records than the
                container (the streams must describe the same trace).
        """
        while self._kinds.size < count:
            if not self._load_frame():
                raise TraceFormatError(
                    "sidecar ends before the container's address stream"
                )
        kinds = self._kinds[:count]
        cycles = self._cycles[:count]
        self._kinds = self._kinds[count:]
        self._cycles = self._cycles[count:]
        return kinds, cycles

    def verify_exhausted(self) -> None:
        """Raise unless every sidecar record was consumed."""
        if self._kinds.size or self._load_frame():
            raise TraceFormatError("sidecar holds more records than the container")

    def iter_all(self, chunk_records: int = 65536) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield every remaining record in bounded chunks (test convenience)."""
        while True:
            if self._kinds.size == 0 and not self._load_frame():
                return
            take = min(int(self._kinds.size), int(chunk_records))
            yield self.take(take)

    def close(self) -> None:
        """Close the compressed stream."""
        self._handle.close()

    def __enter__(self) -> "SidecarReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SyntheticSidecar:
    """Drop-in ``take``/``verify_exhausted`` for containers without a sidecar.

    Kinds default to ``read`` and cycles to ``record_ordinal * cycle_gap``
    (the documented defaults of the export path).

    Example:
        >>> kinds, cycles = SyntheticSidecar(cycle_gap=10).take(3)
        >>> cycles.tolist()
        [0, 10, 20]
    """

    def __init__(self, cycle_gap: int = 1) -> None:
        if cycle_gap <= 0:
            raise TraceFormatError("cycle_gap must be positive")
        self._gap = np.uint64(cycle_gap)
        self._next = np.uint64(0)

    def take(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``count`` synthesized (kinds, cycles) records."""
        kinds = np.zeros(count, dtype=np.uint8)
        cycles = (self._next + np.arange(count, dtype=np.uint64) * self._gap).astype(_U64)
        if count:
            self._next = np.uint64(cycles[-1] + self._gap)
        return kinds, cycles

    def verify_exhausted(self) -> None:
        """Synthetic streams are endless; nothing to verify."""

    def close(self) -> None:
        """Nothing to close."""
