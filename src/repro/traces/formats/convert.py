"""File-to-file conversion between trace formats and ATC containers.

``convert_to_atc`` streams a k6/mase/binary/raw trace file straight into
:meth:`repro.core.atc.AtcEncoder.encode_stream` while teeing the command
and cycle columns into the :mod:`sidecar <repro.traces.formats.sidecar>` —
one pass, flat memory.  ``export_from_atc`` is the reverse: decoded address
chunks are zipped back with the sidecar (or synthesized defaults) and
handed to the target format's writer.  Together they make ATC a usable
interchange format::

    convert_to_atc("k6_app.trc.gz", "app.atc")          # k6 -> ATC
    export_from_atc("app.atc", "k6_app_out.trc.gz")     # ATC -> k6

Round-trip guarantee: with the (default) lossless mode the exported trace
is semantically identical to the input — every address, command and cycle
is preserved (binary/raw targets keep addresses only; the registry marks
them ``lossy_metadata``).  Lossy mode approximates *addresses* per the
paper's codec while the sidecar still reproduces commands and cycles
exactly.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.errors import TraceFormatError
from repro.traces.formats.base import TraceRecords, detect_format, get_format
from repro.traces.formats.sidecar import (
    SidecarReader,
    SidecarWriter,
    SyntheticSidecar,
    has_sidecar,
    sidecar_path,
)
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES

__all__ = ["convert_to_atc", "export_from_atc", "resolve_format", "is_atc_container"]


def is_atc_container(path) -> bool:
    """True when ``path`` is an existing ATC container directory."""
    from repro.core.container import AtcContainer

    return os.path.isdir(os.fspath(path)) and AtcContainer.detect_suffix(path) is not None


def resolve_format(path, name: Optional[str] = None):
    """Resolve an explicit format name or fall back to filename detection.

    Raises:
        TraceFormatError: If the format is neither given nor detectable.
    """
    if name is not None:
        return get_format(name)
    detected = detect_format(path)
    if detected is None:
        raise TraceFormatError(
            f"cannot detect the trace format of {os.fspath(path)!r} from its name; "
            "pass the format explicitly (see 'repro convert --help')"
        )
    return get_format(detected)


def convert_to_atc(
    source,
    directory,
    format: Optional[str] = None,
    mode: str = "c",
    config=None,
    chunk_records: int = DEFAULT_CHUNK_ADDRESSES,
    write_sidecar: bool = True,
    **reader_options,
) -> Dict:
    """Convert a trace file into an ATC container, one streaming pass.

    Args:
        source: Trace file path (``.gz``-transparent) or binary file object.
        format: Registry name (``"k6"``/``"mase"``/``"bin"``/``"raw"``);
            ``None`` detects from the filename.
        mode: ATC mode — ``"c"`` lossless (default, round-trip exact) or
            ``"k"`` lossy (addresses approximated; sidecar stays exact).
        config: Optional :class:`repro.core.lossy.LossyConfig`.
        chunk_records: Records per streaming chunk (bounds peak memory).
        write_sidecar: Store the command/cycle sidecar (on by default).
        **reader_options: Extra adapter knobs (e.g. ``layout=`` for ``bin``).

    Returns:
        Summary dict with ``addresses``, ``format`` and ``container`` keys.
    """
    from repro.core.atc import AtcEncoder

    fmt = resolve_format(source, format)
    chunks = fmt.read(source, chunk_records=chunk_records, **reader_options)
    with AtcEncoder(directory, mode=mode, config=config) as encoder:
        sidecar = SidecarWriter(sidecar_path(directory)) if write_sidecar else None
        try:

            def addresses():
                for records in chunks:
                    if sidecar is not None:
                        sidecar.append(records.kinds, records.cycles)
                    yield records.addresses

            encoder.encode_stream(addresses())
        finally:
            if sidecar is not None:
                sidecar.close()
        coded = encoder.addresses_coded
    return {"addresses": int(coded), "format": fmt.name, "container": os.fspath(directory)}


def export_from_atc(
    directory,
    destination,
    format: Optional[str] = None,
    chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES,
    cycle_gap: int = 1,
    workers: int = 1,
    executor=None,
    **writer_options,
) -> Dict:
    """Export an ATC container back out as a trace file, one streaming pass.

    When the container carries a ``SIDECAR.bz2`` its commands and cycles
    are reproduced exactly; otherwise every record is exported as a read
    with cycles spaced ``cycle_gap`` apart (the documented defaults).

    Args:
        directory: ATC container directory.
        destination: Output path (``.gz``-transparent) or binary file object.
        format: Target registry name; ``None`` detects from the filename.
        chunk_addresses: Decoder re-chunk size (bounds peak memory).
        cycle_gap: Cycle spacing used when no sidecar is present.
        workers: Decoder prefetch/decompress concurrency.
        executor: Executor strategy for the decoder (name or instance).
        **writer_options: Extra adapter knobs (e.g. ``layout=`` for ``bin``).

    Returns:
        Summary dict with ``records``, ``format`` and ``destination`` keys.
    """
    from repro.core.atc import AtcDecoder

    fmt = resolve_format(destination, format)
    # cache_chunks=1: the export is one ordered pass over the intervals, so
    # the decoder's default 16-chunk LRU would just retain every decoded
    # chunk of a lossless container.  The effective capacity still grows to
    # the prefetch lookahead, which keeps repeated imitations of a recent
    # chunk cached on the lossy path.
    decoder = AtcDecoder(directory, workers=workers, executor=executor, cache_chunks=1)
    sidecar = (
        SidecarReader(sidecar_path(directory))
        if has_sidecar(directory)
        else SyntheticSidecar(cycle_gap)
    )
    try:

        def records():
            for chunk in decoder.iter_chunks(chunk_addresses):
                kinds, cycles = sidecar.take(int(chunk.size))
                yield TraceRecords(chunk, kinds, cycles)

        written = fmt.write(destination, records(), **writer_options)
        sidecar.verify_exhausted()
    finally:
        sidecar.close()
    expected = int(decoder.metadata["original_length"])
    if written != expected:
        raise TraceFormatError(
            f"export wrote {written} records but the container holds {expected}"
        )
    return {"records": int(written), "format": fmt.name, "destination": _name_of(destination)}


def _name_of(destination) -> str:
    try:
        return os.fspath(destination)
    except TypeError:
        return getattr(destination, "name", "<stream>")
