"""Trace-format adapters: k6/mase text, binary dumps, ATC converters.

Importing this package populates the format registry (the adapter modules
register themselves), so ``get_format``/``detect_format`` see every
built-in format.  See ``docs/trace-formats.md`` for the on-disk
specifications and ``repro convert --help`` for the CLI front-end.
"""

from repro.traces.formats.base import (
    KIND_IFETCH,
    KIND_NAMES,
    KIND_READ,
    KIND_WRITE,
    TraceFormat,
    TraceRecords,
    concat_records,
    detect_format,
    format_names,
    get_format,
    records_equal,
    register_format,
)
from repro.traces.formats.binary import (
    BIN_FORMAT,
    RAW_FORMAT,
    BinaryLayout,
    iter_binary_records,
    write_binary_records,
)
from repro.traces.formats.convert import (
    convert_to_atc,
    export_from_atc,
    is_atc_container,
    resolve_format,
)
from repro.traces.formats.sidecar import (
    SIDECAR_BASENAME,
    SIDECAR_MAGIC,
    SidecarReader,
    SidecarWriter,
    SyntheticSidecar,
    has_sidecar,
    sidecar_path,
)
from repro.traces.formats.text import (
    K6_COMMANDS,
    K6_FORMAT,
    MASE_COMMANDS,
    MASE_FORMAT,
    iter_k6_records,
    iter_mase_records,
    write_k6_records,
    write_mase_records,
)

__all__ = [
    "KIND_READ",
    "KIND_WRITE",
    "KIND_IFETCH",
    "KIND_NAMES",
    "TraceRecords",
    "TraceFormat",
    "records_equal",
    "concat_records",
    "register_format",
    "get_format",
    "format_names",
    "detect_format",
    "K6_COMMANDS",
    "MASE_COMMANDS",
    "K6_FORMAT",
    "MASE_FORMAT",
    "iter_k6_records",
    "iter_mase_records",
    "write_k6_records",
    "write_mase_records",
    "BinaryLayout",
    "BIN_FORMAT",
    "RAW_FORMAT",
    "iter_binary_records",
    "write_binary_records",
    "SIDECAR_MAGIC",
    "SIDECAR_BASENAME",
    "SidecarWriter",
    "SidecarReader",
    "SyntheticSidecar",
    "sidecar_path",
    "has_sidecar",
    "convert_to_atc",
    "export_from_atc",
    "is_atc_container",
    "resolve_format",
]
