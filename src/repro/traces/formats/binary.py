"""Fixed-record binary trace dumps (Pin/gem5-style) and the raw format.

A *fixed-record binary dump* stores one reference per ``record_bytes``-byte
record with the address embedded at a fixed offset — the shape of the
simplest Pin pintool dumps (8-byte little-endian addresses back to back)
as well as wider gem5/simulator records where the address field shares the
record with packet metadata this library does not interpret.  The layout is
fully described by :class:`BinaryLayout`; ``docs/trace-formats.md`` gives
the byte-level specification.

Binary dumps carry no command or cycle column, so reading synthesizes
``read`` kinds and ordinal cycles, and writing keeps only the address field
(the registry marks these formats ``lossy_metadata``).  The ``raw`` format
of :mod:`repro.traces.trace` is the special case ``record_bytes=8``,
little-endian, registered here so ``repro convert`` treats the paper's own
trace format like any other adapter (with gz transparency as a bonus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError
from repro.traces.formats.base import (
    TraceFormat,
    TraceRecords,
    open_trace_sink,
    open_trace_source,
    register_format,
)
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, check_chunk_addresses

__all__ = [
    "BinaryLayout",
    "iter_binary_records",
    "write_binary_records",
    "BIN_FORMAT",
    "RAW_FORMAT",
]


@dataclass(frozen=True)
class BinaryLayout:
    """Record geometry of a fixed-record binary dump.

    Attributes:
        record_bytes: Total size of one record.
        address_offset: Byte offset of the address field inside the record.
        address_bytes: Width of the address field (1..8).
        byteorder: ``"little"`` or ``"big"``.

    Example:
        >>> BinaryLayout().record_bytes
        8
    """

    record_bytes: int = 8
    address_offset: int = 0
    address_bytes: int = 8
    byteorder: str = "little"

    def __post_init__(self) -> None:
        if self.record_bytes <= 0:
            raise ConfigurationError("record_bytes must be positive")
        if not 1 <= self.address_bytes <= 8:
            raise ConfigurationError("address_bytes must be in 1..8")
        if self.address_offset < 0 or self.address_offset + self.address_bytes > self.record_bytes:
            raise ConfigurationError("address field must fit inside the record")
        if self.byteorder not in ("little", "big"):
            raise ConfigurationError("byteorder must be 'little' or 'big'")

    def _shifts(self) -> Iterable[int]:
        """Bit shift of each address-field byte column, in column order."""
        if self.byteorder == "little":
            return tuple(8 * j for j in range(self.address_bytes))
        return tuple(8 * (self.address_bytes - 1 - j) for j in range(self.address_bytes))


def iter_binary_records(
    source,
    chunk_records: int = DEFAULT_CHUNK_ADDRESSES,
    layout: BinaryLayout = BinaryLayout(),
) -> Iterator[TraceRecords]:
    """Stream a fixed-record binary dump as bounded-memory record chunks.

    Kinds are synthesized as ``read`` and cycles as the record ordinal
    (0, 1, 2, ...), since the format stores neither.  Mid-stream short
    reads are reassembled exactly like ``iter_raw_chunks``; a trailing
    partial record raises :class:`TraceFormatError` after all complete
    records were yielded.

    Example:
        >>> import io
        >>> chunk, = iter_binary_records(io.BytesIO((64).to_bytes(8, "little")))
        >>> int(chunk.addresses[0])
        64
    """
    chunk_records = check_chunk_addresses(chunk_records)
    record_bytes = layout.record_bytes
    columns = range(layout.address_offset, layout.address_offset + layout.address_bytes)
    shifts = layout._shifts()
    handle = open_trace_source(source)
    try:
        pending = b""
        produced = 0
        while True:
            payload = handle.stream.read(chunk_records * record_bytes)
            if not payload:
                if pending:
                    raise TraceFormatError(
                        f"binary trace ends with a partial {record_bytes}-byte record"
                    )
                return
            if pending:
                payload = pending + payload
                pending = b""
            usable = len(payload) - (len(payload) % record_bytes)
            if usable != len(payload):
                # A short read split a record; keep the fragment for the
                # next round (pipes may deliver partial records mid-stream).
                pending = payload[usable:]
                payload = payload[:usable]
            if not payload:
                continue
            raw = np.frombuffer(payload, dtype=np.uint8).reshape(-1, record_bytes)
            addresses = np.zeros(raw.shape[0], dtype=np.uint64)
            for column, shift in zip(columns, shifts):
                addresses |= raw[:, column].astype(np.uint64) << np.uint64(shift)
            yield TraceRecords.from_addresses(addresses, start_cycle=produced)
            produced += raw.shape[0]
    finally:
        handle.close()


def write_binary_records(
    destination,
    chunks: Iterable[TraceRecords],
    layout: BinaryLayout = BinaryLayout(),
) -> int:
    """Write record chunks as a fixed-record binary dump.

    Only the address field is stored (non-address record bytes are zero);
    kinds and cycles are dropped, which is what ``lossy_metadata`` flags.

    Raises:
        TraceFormatError: If an address does not fit in ``address_bytes``.
    """
    columns = range(layout.address_offset, layout.address_offset + layout.address_bytes)
    shifts = layout._shifts()
    handle = open_trace_sink(destination)
    written = 0
    try:
        for chunk in chunks:
            if not isinstance(chunk, TraceRecords):
                chunk = TraceRecords.from_addresses(chunk, start_cycle=written)
            addresses = chunk.addresses
            if layout.address_bytes < 8 and addresses.size:
                limit = np.uint64(1) << np.uint64(8 * layout.address_bytes)
                if int(addresses.max()) >= int(limit):
                    raise TraceFormatError(
                        f"address 0x{int(addresses.max()):x} does not fit in "
                        f"{layout.address_bytes} byte(s)"
                    )
            raw = np.zeros((addresses.size, layout.record_bytes), dtype=np.uint8)
            for column, shift in zip(columns, shifts):
                raw[:, column] = ((addresses >> np.uint64(shift)) & np.uint64(0xFF)).astype(np.uint8)
            handle.stream.write(raw.tobytes())
            written += int(addresses.size)
        return written
    finally:
        handle.close()


BIN_FORMAT = register_format(
    TraceFormat(
        name="bin",
        description="fixed-record binary dump (configurable record width/offset/endianness)",
        read=iter_binary_records,
        write=write_binary_records,
        markers=(".bin", ".dump"),
        lossy_metadata=True,
    )
)

RAW_FORMAT = register_format(
    TraceFormat(
        name="raw",
        description="raw little-endian 64-bit address trace (the paper's bin2atc input)",
        read=iter_binary_records,
        write=write_binary_records,
        markers=(".raw", ".addr"),
        lossy_metadata=True,
    )
)
