"""Line-oriented trace formats: DRAMSim2 ``k6`` and ``mase`` text traces.

Both formats put one reference per line as ``<address> <command> <cycle>``
(see ``docs/trace-formats.md`` for the full grammar):

* ``k6`` commands are ``P_MEM_RD`` / ``P_MEM_WR`` / ``P_FETCH``::

      0x10000 P_MEM_RD 10
      0x20000 P_MEM_WR 11

* ``mase`` commands are ``READ`` / ``WRITE`` / ``IFETCH``.

Addresses are hexadecimal with an optional ``0x`` prefix, cycles are
non-negative decimal integers.  Blank lines and ``#`` comment lines are
skipped.  Readers stream the file a bounded block at a time and carry the
trailing partial line across reads (pipes and gzip members may split lines
anywhere), so memory stays flat for arbitrarily long traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

from repro.errors import TraceFormatError
from repro.traces.formats.base import (
    KIND_IFETCH,
    KIND_READ,
    KIND_WRITE,
    TraceFormat,
    TraceRecords,
    open_trace_sink,
    open_trace_source,
    register_format,
)
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, check_chunk_addresses

__all__ = [
    "K6_COMMANDS",
    "MASE_COMMANDS",
    "iter_k6_records",
    "iter_mase_records",
    "write_k6_records",
    "write_mase_records",
    "K6_FORMAT",
    "MASE_FORMAT",
]

#: k6 command token -> record-kind code (and the writer's reverse table).
K6_COMMANDS: Dict[str, int] = {"P_MEM_RD": KIND_READ, "P_MEM_WR": KIND_WRITE, "P_FETCH": KIND_IFETCH}

#: mase command token -> record-kind code.
MASE_COMMANDS: Dict[str, int] = {"READ": KIND_READ, "WRITE": KIND_WRITE, "IFETCH": KIND_IFETCH}

#: Bytes of one generous text line; sizes the read blocks so that a block
#: holds roughly ``chunk_records`` lines.
_APPROX_LINE_BYTES = 40

_LIMIT = 1 << 64


def _parse_lines(
    lines,
    commands: Dict[str, int],
    format_name: str,
    first_line: int,
) -> TraceRecords:
    """Parse text lines into one record chunk, with line-numbered errors."""
    addresses = []
    kinds = []
    cycles = []
    for offset, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fields = stripped.split()
        where = f"{format_name} line {first_line + offset}"
        if len(fields) != 3:
            raise TraceFormatError(
                f"{where}: expected '<address> <command> <cycle>', got {stripped!r}"
            )
        try:
            address = int(fields[0], 16)
        except ValueError:
            raise TraceFormatError(f"{where}: bad hexadecimal address {fields[0]!r}") from None
        kind = commands.get(fields[1])
        if kind is None:
            raise TraceFormatError(
                f"{where}: unknown command {fields[1]!r} (expected one of {sorted(commands)})"
            )
        try:
            cycle = int(fields[2], 10)
        except ValueError:
            raise TraceFormatError(f"{where}: bad decimal cycle {fields[2]!r}") from None
        if not 0 <= address < _LIMIT:
            raise TraceFormatError(f"{where}: address {fields[0]!r} does not fit in 64 bits")
        if not 0 <= cycle < _LIMIT:
            raise TraceFormatError(f"{where}: cycle {fields[2]!r} does not fit in 64 bits")
        addresses.append(address)
        kinds.append(kind)
        cycles.append(cycle)
    return TraceRecords(
        np.array(addresses, dtype=np.uint64),
        np.array(kinds, dtype=np.uint8),
        np.array(cycles, dtype=np.uint64),
    )


def _iter_text_records(
    source,
    commands: Dict[str, int],
    format_name: str,
    chunk_records: int,
) -> Iterator[TraceRecords]:
    """Shared streaming reader behind both text formats."""
    chunk_records = check_chunk_addresses(chunk_records)
    handle = open_trace_source(source)
    try:
        pending = b""
        line_number = 1
        while True:
            payload = handle.stream.read(chunk_records * _APPROX_LINE_BYTES)
            if not payload:
                if pending:
                    # Final line without a trailing newline.
                    chunk = _decode_block(pending, commands, format_name, line_number)
                    if len(chunk):
                        yield chunk
                return
            if pending:
                payload = pending + payload
                pending = b""
            cut = payload.rfind(b"\n")
            if cut < 0:
                # A short read (or one enormous line) split the line; keep
                # the fragment for the next round.
                pending = payload
                continue
            pending = payload[cut + 1 :]
            block = payload[: cut + 1]
            chunk = _decode_block(block, commands, format_name, line_number)
            line_number += block.count(b"\n")
            if len(chunk):
                yield chunk
    finally:
        handle.close()


def _decode_block(block: bytes, commands, format_name: str, first_line: int) -> TraceRecords:
    try:
        text = block.decode("ascii")
    except UnicodeDecodeError:
        raise TraceFormatError(
            f"{format_name} trace contains non-ASCII bytes near line {first_line}"
        ) from None
    return _parse_lines(text.splitlines(), commands, format_name, first_line)


def _write_text_records(
    destination,
    chunks: Iterable[TraceRecords],
    command_names: Tuple[str, str, str],
    prefix: str,
) -> int:
    """Shared streaming writer: one ``<address> <command> <cycle>`` line each."""
    handle = open_trace_sink(destination)
    written = 0
    try:
        for chunk in chunks:
            if not isinstance(chunk, TraceRecords):
                chunk = TraceRecords.from_addresses(chunk, start_cycle=written)
            lines = [
                f"{prefix}{address:x} {command_names[kind]} {cycle}"
                for address, kind, cycle in zip(
                    chunk.addresses.tolist(), chunk.kinds.tolist(), chunk.cycles.tolist()
                )
            ]
            if lines:
                handle.stream.write(("\n".join(lines) + "\n").encode("ascii"))
                written += len(lines)
        return written
    finally:
        handle.close()


def iter_k6_records(source, chunk_records: int = DEFAULT_CHUNK_ADDRESSES) -> Iterator[TraceRecords]:
    """Stream a DRAMSim2 ``k6`` text trace as bounded-memory record chunks.

    Example:
        >>> import io
        >>> chunk, = iter_k6_records(io.BytesIO(b"0x40 P_MEM_RD 7\\n"))
        >>> int(chunk.addresses[0]), int(chunk.kinds[0]), int(chunk.cycles[0])
        (64, 0, 7)
    """
    return _iter_text_records(source, K6_COMMANDS, "k6", chunk_records)


def iter_mase_records(source, chunk_records: int = DEFAULT_CHUNK_ADDRESSES) -> Iterator[TraceRecords]:
    """Stream a ``mase`` text trace as bounded-memory record chunks.

    Example:
        >>> import io
        >>> chunk, = iter_mase_records(io.BytesIO(b"40 IFETCH 3\\n"))
        >>> int(chunk.addresses[0]), int(chunk.kinds[0])
        (64, 2)
    """
    return _iter_text_records(source, MASE_COMMANDS, "mase", chunk_records)


_K6_NAMES = ("P_MEM_RD", "P_MEM_WR", "P_FETCH")
_MASE_NAMES = ("READ", "WRITE", "IFETCH")


def write_k6_records(destination, chunks: Iterable[TraceRecords]) -> int:
    """Write record chunks as ``k6`` text (``0x``-prefixed hex addresses)."""
    return _write_text_records(destination, chunks, _K6_NAMES, "0x")


def write_mase_records(destination, chunks: Iterable[TraceRecords]) -> int:
    """Write record chunks as ``mase`` text (``0x``-prefixed hex addresses)."""
    return _write_text_records(destination, chunks, _MASE_NAMES, "0x")


K6_FORMAT = register_format(
    TraceFormat(
        name="k6",
        description="DRAMSim2 k6 text trace: '<hex-address> P_MEM_RD|P_MEM_WR|P_FETCH <cycle>'",
        read=iter_k6_records,
        write=write_k6_records,
        markers=("k6",),
    )
)

MASE_FORMAT = register_format(
    TraceFormat(
        name="mase",
        description="mase text trace: '<hex-address> READ|WRITE|IFETCH <cycle>'",
        read=iter_mase_records,
        write=write_mase_records,
        markers=("mase",),
    )
)
