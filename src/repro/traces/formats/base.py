"""Common substrate of the trace-format adapters: records and the registry.

A *trace-format adapter* turns an on-disk trace file into a stream of
:class:`TraceRecords` chunks (and back).  Where the raw pipeline of
:mod:`repro.traces.trace` carries bare 64-bit addresses, real simulator
trace formats (DRAMSim2 ``k6``/``mase`` text, Pin/gem5-style binary dumps)
attach a *command* (read / write / instruction fetch) and a *cycle* stamp to
every reference, so the adapter currency is a triple of parallel arrays.

Adapters follow the same streaming contract as ``iter_raw_chunks``: the
file is read a bounded block at a time, short reads mid-stream are
reassembled (pipes may split a record or a line anywhere), and each yielded
chunk is independent — so a whole file-to-file conversion runs at flat
memory regardless of trace length.

The registry maps format names (``"k6"``, ``"mase"``, ``"bin"``,
``"raw"``) to their adapters and implements the filename-based detection
used by ``repro convert``; the byte/line-level format specifications live
in ``docs/trace-formats.md``.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError
from repro.traces.trace import as_address_array

__all__ = [
    "KIND_READ",
    "KIND_WRITE",
    "KIND_IFETCH",
    "KIND_NAMES",
    "TraceRecords",
    "records_equal",
    "concat_records",
    "TraceFormat",
    "register_format",
    "get_format",
    "format_names",
    "detect_format",
    "open_trace_source",
    "open_trace_sink",
]

#: Record-kind codes shared by every adapter (and the ATC sidecar).
KIND_READ = 0
KIND_WRITE = 1
KIND_IFETCH = 2

#: Kind names indexed by code, for error messages and reports.
KIND_NAMES: Tuple[str, ...] = ("read", "write", "ifetch")

_U64 = np.dtype("<u8")
_U8 = np.uint8


@dataclass(frozen=True)
class TraceRecords:
    """One chunk of decoded trace records: parallel address/kind/cycle arrays.

    Attributes:
        addresses: Byte (or block) addresses as ``uint64``, in trace order.
        kinds: Per-record command code (``KIND_READ``/``KIND_WRITE``/
            ``KIND_IFETCH``) as ``uint8``.
        cycles: Per-record cycle stamp as ``uint64``.  Formats without a
            native cycle column synthesize a monotonically increasing stamp
            (the record ordinal), which is documented per adapter.

    Example:
        >>> chunk = TraceRecords.from_addresses([0x40, 0x80])
        >>> len(chunk), int(chunk.kinds[0]), int(chunk.cycles[1])
        (2, 0, 1)
    """

    addresses: np.ndarray
    kinds: np.ndarray
    cycles: np.ndarray

    def __post_init__(self) -> None:
        addresses = as_address_array(self.addresses)
        kinds = np.ascontiguousarray(self.kinds, dtype=_U8)
        cycles = as_address_array(self.cycles)
        if kinds.shape != addresses.shape or cycles.shape != addresses.shape:
            raise TraceFormatError("addresses, kinds and cycles must have equal length")
        if kinds.size and int(kinds.max()) > KIND_IFETCH:
            raise TraceFormatError(
                f"record kinds must be 0..{KIND_IFETCH} ({'/'.join(KIND_NAMES)})"
            )
        object.__setattr__(self, "addresses", addresses)
        object.__setattr__(self, "kinds", kinds)
        object.__setattr__(self, "cycles", cycles)

    def __len__(self) -> int:
        return int(self.addresses.size)

    @classmethod
    def from_addresses(
        cls,
        addresses,
        kind: int = KIND_READ,
        start_cycle: int = 0,
        cycle_gap: int = 1,
    ) -> "TraceRecords":
        """Wrap bare addresses with a constant kind and gap-spaced cycles."""
        array = as_address_array(addresses)
        kinds = np.full(array.shape, kind, dtype=_U8)
        cycles = (
            np.uint64(start_cycle)
            + np.arange(array.size, dtype=np.uint64) * np.uint64(cycle_gap)
        ).astype(_U64)
        return cls(array, kinds, cycles)


def records_equal(left: TraceRecords, right: TraceRecords) -> bool:
    """True when two record chunks are semantically identical.

    Example:
        >>> a = TraceRecords.from_addresses([1, 2])
        >>> records_equal(a, TraceRecords.from_addresses([1, 2]))
        True
    """
    return (
        bool(np.array_equal(left.addresses, right.addresses))
        and bool(np.array_equal(left.kinds, right.kinds))
        and bool(np.array_equal(left.cycles, right.cycles))
    )


def concat_records(chunks: Iterable[TraceRecords]) -> TraceRecords:
    """Concatenate record chunks into one chunk (test/report convenience)."""
    parts = list(chunks)
    if not parts:
        empty = np.empty(0, dtype=_U64)
        return TraceRecords(empty, np.empty(0, dtype=_U8), empty.copy())
    return TraceRecords(
        np.concatenate([part.addresses for part in parts]),
        np.concatenate([part.kinds for part in parts]),
        np.concatenate([part.cycles for part in parts]),
    )


#: Adapter reader: ``(source, chunk_records=..., **options) -> Iterator[TraceRecords]``.
_Reader = Callable[..., Iterator[TraceRecords]]
#: Adapter writer: ``(destination, chunks, **options) -> records written``.
_Writer = Callable[..., int]


@dataclass(frozen=True)
class TraceFormat:
    """One registered trace-format adapter.

    Attributes:
        name: Registry name (``"k6"``, ``"mase"``, ``"bin"``, ``"raw"``).
        description: One-line description shown by the CLI.
        read: Chunked reader (bounded memory, short-read safe).
        write: Chunked writer consuming :class:`TraceRecords` chunks.
        markers: Lowercase filename markers used by :func:`detect_format`.
        lossy_metadata: True when the writer cannot represent kinds/cycles
            (binary and raw dumps store bare addresses).
    """

    name: str
    description: str
    read: _Reader
    write: _Writer
    markers: Tuple[str, ...] = ()
    lossy_metadata: bool = False


_FORMATS: Dict[str, TraceFormat] = {}


def register_format(fmt: TraceFormat) -> TraceFormat:
    """Add an adapter to the registry (name must be unique)."""
    if fmt.name in _FORMATS:
        raise ConfigurationError(f"trace format {fmt.name!r} is already registered")
    _FORMATS[fmt.name] = fmt
    return fmt


def get_format(name: str) -> TraceFormat:
    """Look up one adapter by registry name.

    Example:
        >>> import repro.traces.formats  # populate the registry
        >>> get_format("k6").name
        'k6'
    """
    try:
        return _FORMATS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown trace format {name!r}; registered: {format_names()}"
        ) from None


def format_names() -> Tuple[str, ...]:
    """Registered format names, in registration order."""
    return tuple(_FORMATS)


def detect_format(path) -> Optional[str]:
    """Guess the format of ``path`` from its filename, or return ``None``.

    The rules (documented in ``docs/trace-formats.md``): a trailing ``.gz``
    is stripped first, then the basename is matched case-insensitively
    against each registered format's markers — ``k6``/``mase`` as a name
    prefix or dotted extension (the DRAMSim2 convention names traces
    ``k6_*.trc`` / ``mase_*.trc``), ``.bin``/``.dump`` for fixed-record
    binary dumps and ``.raw``/``.addr`` for raw 64-bit traces.

    Example:
        >>> import repro.traces.formats
        >>> detect_format("traces/k6_foo.trc.gz")
        'k6'
        >>> detect_format("notes.txt") is None
        True
    """
    name = os.path.basename(os.fspath(path)).lower()
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    for fmt in _FORMATS.values():
        for marker in fmt.markers:
            if marker.startswith("."):
                if name.endswith(marker) or (marker + ".") in name:
                    return fmt.name
            elif name.startswith(marker) or ("." + marker) in name:
                return fmt.name
    return None


@dataclass
class _Handle:
    """A file handle plus the extra handles to close with it (gz stacking)."""

    stream: object
    owned: Tuple[object, ...] = field(default_factory=tuple)

    def close(self) -> None:
        for handle in self.owned:
            handle.close()


def open_trace_source(source) -> _Handle:
    """Open ``source`` for binary reading, transparently inflating ``.gz``.

    File objects pass through untouched (and are not closed by the caller's
    :meth:`_Handle.close`); paths ending in ``.gz`` are wrapped in a
    :class:`gzip.GzipFile` so adapters never see compressed bytes.
    """
    if hasattr(source, "read"):
        return _Handle(stream=source)
    path = os.fspath(source)
    raw = open(path, "rb")
    if path.lower().endswith(".gz"):
        inflated = gzip.GzipFile(fileobj=raw, mode="rb")
        return _Handle(stream=inflated, owned=(inflated, raw))
    return _Handle(stream=raw, owned=(raw,))


def open_trace_sink(destination) -> _Handle:
    """Open ``destination`` for binary writing, gz-compressing ``.gz`` paths.

    Gzip members are written with a fixed zero mtime and no embedded
    filename, so writing the same records always produces byte-identical
    output (the property the golden-fixture tests pin).
    """
    if hasattr(destination, "write"):
        return _Handle(stream=destination)
    path = os.fspath(destination)
    raw = open(path, "wb")
    if path.lower().endswith(".gz"):
        deflated = gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0)
        return _Handle(stream=deflated, owned=(deflated, raw))
    return _Handle(stream=raw, owned=(raw,))
