"""SPEC-CPU2006-like synthetic workload suite.

The paper evaluates on 22 SPEC CPU2006 benchmarks traced with Pin.  SPEC and
Pin are unavailable here, so this module defines 22 *named analogues*, one
per benchmark in Table 1, whose data-reference behaviour mimics the publicly
known memory characteristics of the original program (streaming FP codes,
pointer-chasing integer codes, phase-churning compilers, ...).  The names
deliberately reuse the SPEC identifiers ("410.bwaves", ...) so that
benchmark tables produced by this reproduction can be read side by side with
the paper's tables, but the streams are synthetic: see DESIGN.md Section 2
for the substitution rationale.

The suite spans the axes that matter to ATC:

* compressibility of the *filtered* trace (regular streaming vs random);
* phase stability (stationary vs churning), which drives the lossy
  compression ratio in Table 3;
* working-set size relative to the filter cache, which controls how many
  addresses survive filtering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.traces import synthetic
from repro.traces.synthetic import ReferenceStream, make_reference_stream

__all__ = [
    "SpecLikeWorkload",
    "SPEC_LIKE_NAMES",
    "spec_like_suite",
    "get_workload",
    "generate_reference_stream",
]

_DataBuilder = Callable[[int, int], np.ndarray]


@dataclass(frozen=True)
class SpecLikeWorkload:
    """One named synthetic analogue of a SPEC CPU2006 benchmark.

    Attributes:
        name: SPEC-style identifier, e.g. ``"410.bwaves"``.
        description: One-line description of the modelled behaviour.
        build_data: Function ``(length, seed) -> byte addresses``.
        stability: Qualitative phase stability ("stable", "mixed",
            "unstable"); used by tests and reports, not by the generator.
    """

    name: str
    description: str
    build_data: _DataBuilder
    stability: str = "stable"

    def reference_stream(self, length: int, seed: int = 0) -> ReferenceStream:
        """Generate the combined instruction+data reference stream."""
        data = self.build_data(length, seed)
        return make_reference_stream(data, name=self.name, seed=seed + 1)

    def iter_chunks(self, length: int, chunk_addresses: int, seed: int = 0):
        """Yield the workload's reference stream as fixed-size chunks.

        The chunks are views of the stream :meth:`reference_stream` would
        return for the same ``length``/``seed``, so consuming them through
        any streaming stage is byte-identical to the in-memory path.  The
        synthetic generators are array-based, so generation itself
        materialises the stream once; the point of this entry is that
        everything *downstream* (filter, encoder, container) runs with
        chunk-bounded memory — for truly bounded sources, stream a raw
        trace file through :func:`repro.traces.trace.iter_raw_chunks`.
        """
        return self.reference_stream(length, seed=seed).iter_chunks(chunk_addresses)


def _phases(length: int, builders: List[Callable[[int, int], np.ndarray]], seed: int) -> np.ndarray:
    """Split ``length`` across builders and concatenate their outputs."""
    per_phase = max(length // len(builders), 1)
    segments = []
    produced = 0
    for index, builder in enumerate(builders):
        remaining = length - produced
        want = per_phase if index < len(builders) - 1 else remaining
        if want <= 0:
            break
        segments.append(builder(want, seed + index))
        produced += want
    return synthetic.phased_stream(segments)


def _alternating(length: int, builders: List[Callable[[int, int], np.ndarray]], slices: int, seed: int) -> np.ndarray:
    """Cycle through builders ``slices`` times (periodic phase behaviour)."""
    cycle = [builders[i % len(builders)] for i in range(slices)]
    return _phases(length, cycle, seed)


# ---------------------------------------------------------------------------
# per-benchmark data-stream builders
# ---------------------------------------------------------------------------
def _perlbench(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.stack_accesses(n, seed=s),
            lambda n, s: synthetic.pointer_chase(n, num_nodes=3000, seed=s),
            lambda n, s: synthetic.random_working_set(n, working_set_blocks=4096, seed=s),
        ],
        slices=9,
        seed=seed,
    )


def _bzip2(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.sequential_stream(n, base=0x1200_0000, stride=64),
            lambda n, s: synthetic.random_working_set(n, working_set_blocks=12000, seed=s),
        ],
        slices=8,
        seed=seed,
    )


def _gcc(length: int, seed: int) -> np.ndarray:
    # Phase-churning: every phase touches a new heap region with a different
    # mixture, so intervals rarely resemble previously stored chunks.
    builders = []
    for phase in range(12):
        base = 0x2000_0000 + phase * 0x0200_0000

        def make(phase_base):
            def build(n, s):
                return synthetic.region_mixture(
                    n,
                    regions=[(phase_base, 1 << 21), (phase_base + (1 << 22), 1 << 19)],
                    weights=[0.7, 0.3],
                    seed=s,
                )

            return build

        builders.append(make(base))
    return _phases(length, builders, seed)


def _bwaves(length: int, seed: int) -> np.ndarray:
    return synthetic.multi_stream(
        length, bases=[0x4000_0000, 0x4800_0000, 0x5000_0000, 0x5800_0000], stride=8
    )


def _mcf(length: int, seed: int) -> np.ndarray:
    return synthetic.pointer_chase(length, num_nodes=200_000, node_bytes=64, seed=seed)


def _milc(length: int, seed: int) -> np.ndarray:
    return synthetic.strided_stream(length, base=0x6000_0000, stride=64, wrap_bytes=1 << 28)


def _zeusmp(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.loop_nest(n, rows=384, cols=384, column_major=False),
            lambda n, s: synthetic.loop_nest(n, rows=384, cols=384, column_major=True),
        ],
        slices=6,
        seed=seed,
    )


def _gromacs(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.random_working_set(n, working_set_blocks=6000, seed=s),
            lambda n, s: synthetic.sequential_stream(n, base=0x7000_0000, stride=24),
        ],
        slices=10,
        seed=seed,
    )


def _namd(length: int, seed: int) -> np.ndarray:
    return synthetic.region_mixture(
        length,
        regions=[(0x7400_0000, 1 << 22), (0x7800_0000, 1 << 20), (0x7C00_0000, 1 << 18)],
        weights=[0.5, 0.3, 0.2],
        seed=seed,
    )


def _gobmk(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.stack_accesses(n, seed=s),
            lambda n, s: synthetic.random_working_set(n, working_set_blocks=8000, seed=s),
        ],
        slices=8,
        seed=seed,
    )


def _dealII(length: int, seed: int) -> np.ndarray:
    builders = []
    for phase in range(10):
        base = 0x8000_0000 + phase * 0x0100_0000

        def make(phase_base, phase_id):
            def build(n, s):
                return synthetic.region_mixture(
                    n,
                    regions=[(phase_base, 1 << 20), (0x9000_0000, 1 << 23)],
                    weights=[0.6, 0.4],
                    seed=s + phase_id,
                )

            return build

        builders.append(make(base, phase))
    return _phases(length, builders, seed)


def _soplex(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.strided_stream(n, base=0x9800_0000, stride=512, wrap_bytes=1 << 24),
            lambda n, s: synthetic.random_working_set(n, working_set_blocks=30_000, seed=s),
        ],
        slices=6,
        seed=seed,
    )


def _povray(length: int, seed: int) -> np.ndarray:
    # Tiny working set: almost everything hits in the filter cache, so the
    # filtered trace is short, matching povray's near-zero BPA rows.
    return synthetic.random_working_set(length, working_set_blocks=300, seed=seed)


def _hmmer(length: int, seed: int) -> np.ndarray:
    return synthetic.strided_stream(length, base=0xA000_0000, stride=16, wrap_bytes=1 << 20)


def _sjeng(length: int, seed: int) -> np.ndarray:
    return synthetic.random_working_set(length, working_set_blocks=250_000, seed=seed)


def _libquantum(length: int, seed: int) -> np.ndarray:
    return synthetic.strided_stream(length, base=0xB000_0000, stride=16, wrap_bytes=1 << 26)


def _h264ref(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.loop_nest(n, base=0xB800_0000, rows=128, cols=128),
            lambda n, s: synthetic.sequential_stream(n, base=0xBC00_0000, stride=32),
            lambda n, s: synthetic.random_working_set(n, working_set_blocks=4000, base=0xBE00_0000, seed=s),
        ],
        slices=9,
        seed=seed,
    )


def _lbm(length: int, seed: int) -> np.ndarray:
    # Two disjoint lattices touched in alternating sweeps: the behaviour the
    # byte-translation mechanism needs (Figure 4), since later phases touch
    # address regions not seen in the stored chunks.
    builders = []
    for phase in range(8):
        base = 0xC000_0000 + phase * 0x0400_0000

        def make(phase_base):
            def build(n, s):
                return synthetic.multi_stream(n, bases=[phase_base, phase_base + 0x0200_0000], stride=8)

            return build

        builders.append(make(base))
    return _phases(length, builders, seed)


def _omnetpp(length: int, seed: int) -> np.ndarray:
    return synthetic.pointer_chase(length, num_nodes=120_000, node_bytes=128, seed=seed)


def _astar(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.pointer_chase(n, num_nodes=60_000, seed=s),
            lambda n, s: synthetic.random_working_set(n, working_set_blocks=50_000, base=0xD000_0000, seed=s),
        ],
        slices=6,
        seed=seed,
    )


def _sphinx3(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.sequential_stream(n, base=0xD800_0000, stride=8),
            lambda n, s: synthetic.random_working_set(n, working_set_blocks=20_000, base=0xDC00_0000, seed=s),
        ],
        slices=10,
        seed=seed,
    )


def _xalancbmk(length: int, seed: int) -> np.ndarray:
    return _alternating(
        length,
        [
            lambda n, s: synthetic.pointer_chase(n, num_nodes=40_000, node_bytes=96, seed=s),
            lambda n, s: synthetic.stack_accesses(n, seed=s),
            lambda n, s: synthetic.random_working_set(n, working_set_blocks=15_000, base=0xE000_0000, seed=s),
        ],
        slices=9,
        seed=seed,
    )


_SUITE_SPEC: List[Tuple[str, str, _DataBuilder, str]] = [
    ("400.perlbench", "interpreter: stack + pointer chasing + hash tables", _perlbench, "mixed"),
    ("401.bzip2", "block sorting: sequential sweeps + random working set", _bzip2, "mixed"),
    ("403.gcc", "compiler: phase-churning heap regions, irregular", _gcc, "unstable"),
    ("410.bwaves", "FP streaming over four concurrent arrays", _bwaves, "stable"),
    ("429.mcf", "network simplex: pointer chasing over a large graph", _mcf, "stable"),
    ("433.milc", "lattice QCD: long unit-stride sweeps", _milc, "stable"),
    ("434.zeusmp", "CFD loop nests, alternating row/column sweeps", _zeusmp, "stable"),
    ("435.gromacs", "MD: particle working set + neighbour streaming", _gromacs, "mixed"),
    ("444.namd", "MD: mixture of particle regions", _namd, "stable"),
    ("445.gobmk", "game tree search: stack + board working set", _gobmk, "mixed"),
    ("447.dealII", "FEM: sparse, phase-churning regions", _dealII, "unstable"),
    ("450.soplex", "LP solver: strided sparse matrix + random columns", _soplex, "mixed"),
    ("453.povray", "ray tracing: tiny cache-resident working set", _povray, "stable"),
    ("456.hmmer", "HMM search: small-table streaming", _hmmer, "stable"),
    ("458.sjeng", "chess: large hash table, random probes", _sjeng, "stable"),
    ("462.libquantum", "quantum simulation: pure streaming", _libquantum, "stable"),
    ("464.h264ref", "video encode: blocked loop nests + motion search", _h264ref, "mixed"),
    ("470.lbm", "lattice Boltzmann: alternating sweeps over disjoint lattices", _lbm, "stable"),
    ("471.omnetpp", "discrete event simulation: heap pointer chasing", _omnetpp, "stable"),
    ("473.astar", "path finding: pointer chasing + open-list working set", _astar, "mixed"),
    ("482.sphinx3", "speech: model streaming + random lookups", _sphinx3, "mixed"),
    ("483.xalancbmk", "XSLT: DOM pointer chasing + stack + tables", _xalancbmk, "unstable"),
]

#: Names of the 22 workloads, in Table 1 order.
SPEC_LIKE_NAMES: Tuple[str, ...] = tuple(name for name, _, _, _ in _SUITE_SPEC)

_WORKLOADS: Dict[str, SpecLikeWorkload] = {
    name: SpecLikeWorkload(name=name, description=description, build_data=builder, stability=stability)
    for name, description, builder, stability in _SUITE_SPEC
}


def spec_like_suite() -> List[SpecLikeWorkload]:
    """Return all 22 workloads in Table 1 order."""
    return [_WORKLOADS[name] for name in SPEC_LIKE_NAMES]


def get_workload(name: str) -> SpecLikeWorkload:
    """Look up one workload by its SPEC-style name (or its numeric prefix).

    Both ``"429.mcf"`` and ``"429"`` resolve to the mcf-like workload, which
    mirrors the paper's habit of abbreviating trace names to their number.
    Names not in the 22-benchmark suite fall back to the workload zoo
    (:mod:`repro.traces.zoo`), so mixes and kernel scenarios run everywhere
    a spec-like name does — sweeps, the harness, ``repro bench``.

    Example:
        >>> get_workload("429").name
        '429.mcf'
        >>> len(get_workload("433.milc").reference_stream(1000))  # instr + data refs
        2000
        >>> get_workload("stream.copy").name                     # zoo fallback
        'stream.copy'
    """
    if name in _WORKLOADS:
        return _WORKLOADS[name]
    for full_name, workload in _WORKLOADS.items():
        if full_name.split(".")[0] == name:
            return workload
    # Deferred import: the zoo builds on this module, so importing it at
    # module scope would be circular.
    from repro.traces.zoo import ZOO_NAMES, find_zoo_workload

    zoo_workload = find_zoo_workload(name)
    if zoo_workload is not None:
        return zoo_workload
    raise ConfigurationError(
        f"unknown workload {name!r} (spec-like: {list(SPEC_LIKE_NAMES)}; zoo: {list(ZOO_NAMES)})"
    )


def generate_reference_stream(name: str, length: int, seed: int = 0) -> ReferenceStream:
    """Generate the instruction+data reference stream for one workload."""
    return get_workload(name).reference_stream(length, seed=seed)
