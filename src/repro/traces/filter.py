"""Cache filter front-end: reference stream -> cache-filtered address trace.

Reproduces the paper's trace-collection setup (Section 4.2): every
instruction fetch goes through a level-1 instruction cache and every data
reference through a level-1 data cache; both are 32 KB, 4-way
set-associative, 64-byte blocks, LRU.  "The filtered address sequence
contains missing instruction and data block addresses in sequential order."

The output is an :class:`~repro.traces.trace.AddressTrace` of *block*
addresses whose six most significant bits are zero (64-byte blocks), i.e.
exactly the input format of the ATC compressor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.cache.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.errors import ConfigurationError
from repro.traces.synthetic import ReferenceStream
from repro.traces.trace import DEFAULT_CHUNK_ADDRESSES, AddressTrace

__all__ = [
    "PAPER_L1_CONFIG",
    "CacheFilter",
    "StreamingCacheFilter",
    "FilterResult",
    "filter_reference_stream",
    "filter_reference_streams",
    "filter_reference_streams_fused",
    "filtered_spec_like_trace",
    "filter_spec_like_traces",
    "iter_filtered_spec_like_chunks",
]

#: The paper's filter cache geometry: 32 KB, 4-way, 64-byte blocks, LRU.
PAPER_L1_CONFIG = CacheConfig.from_capacity(
    capacity_bytes=32 * 1024, associativity=4, block_bytes=64, policy="lru", name="L1"
)


@dataclass(frozen=True)
class FilterResult:
    """Output of a cache-filter run.

    Attributes:
        trace: The cache-filtered trace of block addresses, in miss order.
        instruction_stats: Hit/miss counters of the L1 instruction cache.
        data_stats: Hit/miss counters of the L1 data cache.
    """

    trace: AddressTrace
    instruction_stats: CacheStats
    data_stats: CacheStats

    @property
    def total_references(self) -> int:
        """Number of references presented to the filter caches."""
        return self.instruction_stats.accesses + self.data_stats.accesses

    @property
    def filter_ratio(self) -> float:
        """Fraction of references that survived filtering (miss ratio)."""
        if self.total_references == 0:
            return 0.0
        return len(self.trace) / self.total_references


class CacheFilter:
    """L1I + L1D filter producing cache-filtered block-address traces.

    ``workers``/``executor`` select the kernel execution strategy for the
    fused simulation (see :func:`~repro.cache.cache.access_batches`): the
    default ``workers=1`` keeps the serial inline path, while e.g.
    ``workers=4, executor="process"`` shards the set-parallel kernel
    across a process pool by row index.  Output is bit-identical for
    every strategy.
    """

    def __init__(
        self,
        instruction_config: CacheConfig = PAPER_L1_CONFIG,
        data_config: CacheConfig = PAPER_L1_CONFIG,
        workers: int = 1,
        executor=None,
    ) -> None:
        if instruction_config.block_bytes != data_config.block_bytes:
            raise ConfigurationError("instruction and data caches must share the block size")
        self.instruction_cache = SetAssociativeCache(instruction_config)
        self.data_cache = SetAssociativeCache(data_config)
        self.block_bytes = data_config.block_bytes
        self._block_shift = self.block_bytes.bit_length() - 1
        self.workers = workers
        self.executor = executor

    def miss_blocks(self, stream: ReferenceStream) -> np.ndarray:
        """Filter one reference stream and return its miss-block array.

        The instruction and data caches never interact, so the interleaved
        reference stream is split into the two per-cache subsequences and
        both are simulated in one *fused* call to
        :func:`~repro.cache.cache.access_batches` — the set-parallel array
        kernel marches the L1I and L1D sets in a single row space, about
        3x the throughput of simulating the pair with per-reference
        replays.  The two miss masks are merged back so the filtered
        trace keeps the original miss order.  Cache state persists across
        calls, which is what makes chunked filtering byte-identical to
        one-shot filtering (see :class:`StreamingCacheFilter`).
        """
        from repro.cache.cache import access_batches

        addresses = stream.addresses
        is_instruction = stream.is_instruction.astype(bool)
        blocks = (addresses >> np.uint64(self._block_shift)).astype(np.uint64)
        miss_mask = np.zeros(blocks.size, dtype=bool)
        instruction_positions = np.flatnonzero(is_instruction)
        data_positions = np.flatnonzero(~is_instruction)
        instruction_hits, data_hits = access_batches(
            (self.instruction_cache, self.data_cache),
            (blocks[instruction_positions], blocks[data_positions]),
            workers=self.workers,
            executor=self.executor,
        )
        miss_mask[instruction_positions] = ~instruction_hits
        miss_mask[data_positions] = ~data_hits
        return blocks[miss_mask]

    def filter(self, stream: ReferenceStream) -> FilterResult:
        """Filter one reference stream and return the miss trace and stats."""
        trace = AddressTrace(self.miss_blocks(stream), name=stream.name)
        return FilterResult(
            trace=trace,
            instruction_stats=self.instruction_cache.stats,
            data_stats=self.data_cache.stats,
        )

    def filter_tagged(self, stream: ReferenceStream) -> FilterResult:
        """Filter a stream, emitting demand misses *and* write-backs, tagged.

        The paper notes that the six spare high bits of a 64-byte-block
        address "may be used to store some extra information, e.g., whether
        the address corresponds to a demand miss or a write-back"
        (Section 2).  This method models a write-allocate / write-back data
        cache: data writes mark blocks dirty, and evicting a dirty block
        appends a :class:`~repro.traces.records.RecordKind.WRITE_BACK`
        record to the filtered trace right after the demand miss that caused
        the eviction.  Instruction misses are tagged
        ``INSTRUCTION_MISS`` and data misses ``DEMAND_MISS``.
        """
        from repro.traces.records import RecordKind, tag_addresses

        addresses = stream.addresses
        is_instruction = stream.is_instruction
        is_write = stream.is_write
        blocks = (addresses >> np.uint64(self._block_shift)).astype(np.uint64)
        records: list = []
        kinds: list = []
        icache = self.instruction_cache
        dcache = self.data_cache
        iterator = zip(blocks.tolist(), is_instruction.tolist(), is_write.tolist())
        for block, instruction, write in iterator:
            if instruction:
                if not icache.access_block(block):
                    records.append(block)
                    kinds.append(int(RecordKind.INSTRUCTION_MISS))
                continue
            hit, writeback = dcache.access_block_rw(block, is_write=write)
            if not hit:
                records.append(block)
                kinds.append(int(RecordKind.DEMAND_MISS))
            if writeback is not None:
                records.append(writeback)
                kinds.append(int(RecordKind.WRITE_BACK))
        tagged = tag_addresses(np.array(records, dtype=np.uint64), kinds)
        trace = AddressTrace(tagged, name=stream.name)
        return FilterResult(
            trace=trace,
            instruction_stats=self.instruction_cache.stats,
            data_stats=self.data_cache.stats,
        )

    def reset(self) -> None:
        """Reset both filter caches (contents and statistics)."""
        self.instruction_cache.reset()
        self.data_cache.reset()


class StreamingCacheFilter:
    """Chunked cache filter: reference-stream chunks in, miss chunks out.

    The filter caches carry their state (contents, LRU stamps, counters)
    across chunks, so for any chunking of a reference stream the
    concatenated output of :meth:`filter_chunks` is byte-identical to
    ``CacheFilter().filter(stream).trace.addresses`` on the whole stream —
    while peak memory stays bounded by the chunk size.

    Typical use::

        filt = StreamingCacheFilter()
        miss_chunks = filt.filter_chunks(stream.iter_chunks(65536))
        encoder.encode_stream(miss_chunks)
    """

    def __init__(
        self,
        instruction_config: CacheConfig = PAPER_L1_CONFIG,
        data_config: CacheConfig = PAPER_L1_CONFIG,
        workers: int = 1,
        executor=None,
    ) -> None:
        self.cache_filter = CacheFilter(
            instruction_config, data_config, workers=workers, executor=executor
        )

    def filter_chunk(self, chunk: ReferenceStream) -> np.ndarray:
        """Filter one chunk, carrying cache state from previous chunks."""
        return self.cache_filter.miss_blocks(chunk)

    def filter_chunks(self, chunks: Iterable[ReferenceStream]) -> Iterator[np.ndarray]:
        """Yield the miss-block chunk of every reference-stream chunk.

        A lazy generator: chunks are filtered one at a time as the consumer
        pulls them, so a whole-trace pipeline never holds more than one
        reference chunk and its (shorter) miss chunk.
        """
        from repro.core.stream import map_chunks

        return map_chunks(chunks, self.filter_chunk)

    @property
    def instruction_stats(self) -> CacheStats:
        """Hit/miss counters of the L1 instruction cache so far."""
        return self.cache_filter.instruction_cache.stats

    @property
    def data_stats(self) -> CacheStats:
        """Hit/miss counters of the L1 data cache so far."""
        return self.cache_filter.data_cache.stats

    def reset(self) -> None:
        """Reset both filter caches (contents and statistics)."""
        self.cache_filter.reset()


def filter_reference_stream(
    stream: ReferenceStream,
    instruction_config: CacheConfig = PAPER_L1_CONFIG,
    data_config: CacheConfig = PAPER_L1_CONFIG,
) -> FilterResult:
    """Filter ``stream`` with fresh L1I/L1D caches (one-shot convenience)."""
    return CacheFilter(instruction_config, data_config).filter(stream)


def _filter_stream_task(task) -> FilterResult:
    """Picklable per-stream batch-filter cell (runs in any executor worker)."""
    stream, instruction_config, data_config = task
    return filter_reference_stream(stream, instruction_config, data_config)


def filter_reference_streams(
    streams,
    instruction_config: CacheConfig = PAPER_L1_CONFIG,
    data_config: CacheConfig = PAPER_L1_CONFIG,
    workers: int = 1,
    executor=None,
):
    """Batch-filter several independent reference streams, in input order.

    Each stream is filtered through its own fresh L1I/L1D pair (streams are
    independent workloads, exactly the paper's per-benchmark setup), so the
    cells can fan out on the executor engine — including the process
    executor, where cache simulation is a pure-Python/numpy hot loop that
    otherwise serialises on the GIL.  The per-stream results are identical
    to ``[filter_reference_stream(s, ...) for s in streams]`` for every
    strategy.

    Args:
        streams: Iterable of :class:`~repro.traces.synthetic.ReferenceStream`.
        instruction_config: L1I geometry applied to every stream.
        data_config: L1D geometry applied to every stream.
        workers: Concurrent cells (``0``/``None`` = one per CPU).
        executor: Strategy name, live executor, or ``None`` for the
            environment/auto default.

    Returns:
        ``List[FilterResult]`` in the order the streams were given.
    """
    from repro.core.parallel import map_ordered

    tasks = [(stream, instruction_config, data_config) for stream in streams]
    return map_ordered(_filter_stream_task, tasks, workers=workers, executor=executor)


def filter_reference_streams_fused(
    streams,
    instruction_config: CacheConfig = PAPER_L1_CONFIG,
    data_config: CacheConfig = PAPER_L1_CONFIG,
):
    """Filter several independent streams in one fused kernel pass.

    Where :func:`filter_reference_streams` fans the per-stream cells out
    across executor workers (real cores, process pools), this is the
    *single-core* batch form: every stream gets its own fresh L1I/L1D pair
    (the paper's per-benchmark filters, or per-core filters in a multicore
    trace collection), and all those caches march together in one
    :func:`~repro.cache.cache.access_batches` row space.  The set-parallel
    kernel's cost is dominated by its per-time-step overhead, so widening
    the row space with more independent caches raises throughput almost
    linearly — filtering a whole suite this way is several times faster
    than filtering its streams one after another.  Results are identical
    to ``[filter_reference_stream(s, ...) for s in streams]``.

    Args:
        streams: Iterable of :class:`~repro.traces.synthetic.ReferenceStream`.
        instruction_config: L1I geometry applied to every stream.
        data_config: L1D geometry applied to every stream.

    Returns:
        ``List[FilterResult]`` in the order the streams were given.
    """
    from repro.cache.cache import access_batches

    streams = list(streams)
    filters = [CacheFilter(instruction_config, data_config) for _ in streams]
    caches = []
    batches = []
    splits = []
    for stream, cache_filter in zip(streams, filters):
        blocks = (stream.addresses >> np.uint64(cache_filter._block_shift)).astype(np.uint64)
        is_instruction = stream.is_instruction.astype(bool)
        instruction_positions = np.flatnonzero(is_instruction)
        data_positions = np.flatnonzero(~is_instruction)
        caches.extend((cache_filter.instruction_cache, cache_filter.data_cache))
        batches.extend((blocks[instruction_positions], blocks[data_positions]))
        splits.append((blocks, instruction_positions, data_positions))
    masks = access_batches(caches, batches)
    results = []
    for index, (stream, cache_filter) in enumerate(zip(streams, filters)):
        blocks, instruction_positions, data_positions = splits[index]
        miss_mask = np.zeros(blocks.size, dtype=bool)
        miss_mask[instruction_positions] = ~masks[2 * index]
        miss_mask[data_positions] = ~masks[2 * index + 1]
        results.append(
            FilterResult(
                trace=AddressTrace(blocks[miss_mask], name=stream.name),
                instruction_stats=cache_filter.instruction_cache.stats,
                data_stats=cache_filter.data_cache.stats,
            )
        )
    return results


def filtered_spec_like_trace(
    name: str,
    reference_count: int,
    seed: int = 0,
    instruction_config: CacheConfig = PAPER_L1_CONFIG,
    data_config: CacheConfig = PAPER_L1_CONFIG,
) -> AddressTrace:
    """Generate a spec-like workload and return its cache-filtered trace.

    This is the single call used throughout the benchmark harness to obtain
    the analogue of the paper's per-benchmark traces.

    Args:
        name: Workload name (e.g. ``"429.mcf"`` or ``"429"``).
        reference_count: Number of *data* references to generate before
            filtering (the filtered trace is shorter, by the filter ratio).
        seed: Workload RNG seed.
        instruction_config: L1I geometry (paper default).
        data_config: L1D geometry (paper default).

    Example:
        >>> trace = filtered_spec_like_trace("462.libquantum", 3000)
        >>> trace.name
        '462.libquantum'
        >>> 0 < len(trace)                       # misses survive the filter...
        True
        >>> bool(trace.addresses.max() < 1 << 58)   # ...as 64-byte block addresses
        True
    """
    from repro.traces.spec_like import generate_reference_stream

    stream = generate_reference_stream(name, reference_count, seed=seed)
    return filter_reference_stream(stream, instruction_config, data_config).trace


def _spec_like_trace_task(task):
    """Picklable generate+filter cell: returns ``(name, miss_blocks)``.

    The bulk payload is returned as a bare ``uint64`` array so the process
    executor ships it back through shared memory; the caller re-wraps it
    into an :class:`~repro.traces.trace.AddressTrace`.
    """
    name, reference_count, seed, instruction_config, data_config = task
    trace = filtered_spec_like_trace(
        name,
        reference_count,
        seed=seed,
        instruction_config=instruction_config,
        data_config=data_config,
    )
    return name, trace.addresses


def filter_spec_like_traces(
    names,
    reference_count: int,
    seed: int = 0,
    instruction_config: CacheConfig = PAPER_L1_CONFIG,
    data_config: CacheConfig = PAPER_L1_CONFIG,
    workers: int = 1,
    executor=None,
):
    """Generate and cache-filter several spec-like workloads concurrently.

    The batch form of :func:`filtered_spec_like_trace` — the whole-suite
    fan-out the benchmark harness and sweep runner pay for up front.  Each
    workload is generated and filtered independently (fresh caches per
    workload), so cells parallelise perfectly; on the process executor the
    generation + simulation hot loops finally use real cores, and each
    filtered trace rides shared memory back to the caller.  Results are
    identical to the serial loop for every strategy.

    Args:
        names: Workload names, e.g. ``["429.mcf", "462.libquantum"]``.
        reference_count: Data references generated per workload.
        seed: Workload RNG seed (same for every workload, like the bench
            suite).
        instruction_config: L1I geometry (paper default).
        data_config: L1D geometry (paper default).
        workers: Concurrent workloads (``0``/``None`` = one per CPU).
        executor: Strategy name, live executor, or ``None`` for the
            environment/auto default.

    Returns:
        ``Dict[str, AddressTrace]`` keyed by workload name, in input order.
    """
    from repro.core.parallel import map_ordered

    tasks = [
        (str(name), int(reference_count), int(seed), instruction_config, data_config)
        for name in names
    ]
    results = map_ordered(_spec_like_trace_task, tasks, workers=workers, executor=executor)
    return {name: AddressTrace(addresses, name=name) for name, addresses in results}


def iter_filtered_spec_like_chunks(
    name: str,
    reference_count: int,
    chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES,
    seed: int = 0,
    instruction_config: CacheConfig = PAPER_L1_CONFIG,
    data_config: CacheConfig = PAPER_L1_CONFIG,
) -> Iterator[np.ndarray]:
    """Stream the cache-filtered trace of a spec-like workload in chunks.

    The concatenated chunks are byte-identical to
    ``filtered_spec_like_trace(name, reference_count, seed).addresses``
    with the same cache geometry; downstream consumers (ATC encoder,
    hierarchy replay) see chunk-bounded memory.
    """
    from repro.traces.spec_like import get_workload

    streaming_filter = StreamingCacheFilter(instruction_config, data_config)
    chunks = get_workload(name).iter_chunks(reference_count, chunk_addresses, seed=seed)
    return streaming_filter.filter_chunks(chunks)
