"""Multi-core trace composition.

The paper motivates compact cache-filtered traces with multicore
simulation: "combined with some other simulation tools ..., cache-filtered
address traces can be used to simulate a multicore memory hierarchy,
including main memory" (Section 2).  This module provides the small
substrate needed for that use: interleaving several per-core filtered
traces into a single shared-hierarchy reference stream, and splitting a
merged stream back into its per-core components.

Two interleavings are provided:

* **round-robin** — one address from each core in turn (the simplest model
  of cores progressing at the same rate);
* **rate-weighted** — cores are interleaved proportionally to a weight, so
  a core with weight 2 injects twice as many references per unit time as a
  core with weight 1 (a crude model of heterogeneous miss rates).

Both exist in two forms: the in-memory ``interleave_*`` functions, which
take whole per-core arrays and return the merged array, and the streaming
``iter_interleave_*`` chunk mergers, which take one *chunk stream* per core
(any iterable of ``uint64`` arrays) and yield merged chunks with peak
memory bounded by the chunk sizes.  The in-memory functions are thin
wrappers over the chunk mergers, so the two paths are byte-identical by
construction.

Core identity is preserved by tagging each address with the core id in the
spare high bits of the block address (the same spare bits the paper
suggests for demand/write-back tags), so a merged trace remains a plain
sequence of 64-bit values that ATC can compress unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError
from repro.traces.records import TAG_BITS, tag_addresses, untag_addresses
from repro.traces.trace import (
    DEFAULT_CHUNK_ADDRESSES,
    AddressTrace,
    as_address_array,
    check_chunk_addresses,
)

__all__ = [
    "MAX_CORES",
    "interleave_round_robin",
    "interleave_weighted",
    "iter_interleave_round_robin",
    "iter_interleave_weighted",
    "split_by_core",
    "merge_traces",
]

#: Core ids must fit in the spare tag bits of a block address.
MAX_CORES = 1 << TAG_BITS


def _validate_cores(per_core_traces: Sequence) -> List[np.ndarray]:
    if not per_core_traces:
        raise ConfigurationError("at least one per-core trace is required")
    if len(per_core_traces) > MAX_CORES:
        raise ConfigurationError(f"at most {MAX_CORES} cores are supported")
    arrays = []
    for trace in per_core_traces:
        if isinstance(trace, AddressTrace):
            arrays.append(trace.addresses)
        else:
            arrays.append(as_address_array(trace))
    return arrays


def _validate_weights(num_cores: int, weights: Sequence[float]) -> List[float]:
    if len(weights) != num_cores:
        raise ConfigurationError("one weight per core is required")
    if any(weight <= 0 for weight in weights):
        raise ConfigurationError("weights must be positive")
    return [float(weight) for weight in weights]


class _CoreCursor:
    """Bounded read cursor over one core's chunk stream.

    Holds at most one chunk of the core's trace in memory; ``peek`` refills
    from the underlying iterator (skipping empty chunks) and reports
    whether the core still has addresses to emit.
    """

    def __init__(self, chunks: Iterable[np.ndarray]) -> None:
        self._chunks = iter(chunks)
        self._buffer = np.empty(0, dtype=np.uint64)
        self._position = 0
        self._exhausted = False

    def peek(self) -> bool:
        """True when the core has at least one address left."""
        while self._position >= self._buffer.size:
            if self._exhausted:
                return False
            try:
                self._buffer = as_address_array(next(self._chunks))
            except StopIteration:
                self._exhausted = True
                return False
            self._position = 0
        return True

    def pop(self) -> np.uint64:
        """Return the core's next address (call :meth:`peek` first)."""
        value = self._buffer[self._position]
        self._position += 1
        return value


def iter_interleave_weighted(
    per_core_chunks: Sequence[Iterable[np.ndarray]],
    weights: Sequence[float],
    tag_core_id: bool = True,
    chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES,
) -> Iterator[np.ndarray]:
    """Merge per-core *chunk streams* with per-core injection rates.

    A deterministic deficit-counter schedule is used: at every step each
    core with remaining addresses earns its weight in credit, and the core
    with the largest accumulated credit emits its next address and pays the
    active weight total.  With equal weights this degenerates to
    round-robin.  Cores that run out of addresses drop out of the rotation;
    the merged stream contains every input address exactly once.

    Each element of ``per_core_chunks`` is any iterable of ``uint64``
    arrays (one chunk stream per core).  Merged chunks of
    ``chunk_addresses`` addresses are yielded as they fill (the last may be
    shorter); peak memory is one buffered chunk per core plus one output
    chunk, regardless of trace length.  The concatenated output is
    byte-identical to :func:`interleave_weighted` on the materialised
    per-core traces.

    Configuration errors (core count, weights, chunk size) are raised at
    the call site, before the first chunk is pulled.
    """
    num_cores = len(per_core_chunks)
    if num_cores == 0:
        raise ConfigurationError("at least one per-core trace is required")
    if num_cores > MAX_CORES:
        raise ConfigurationError(f"at most {MAX_CORES} cores are supported")
    weights = _validate_weights(num_cores, weights)
    chunk_addresses = check_chunk_addresses(chunk_addresses)
    return _merge_weighted(per_core_chunks, weights, tag_core_id, chunk_addresses)


def _merge_weighted(
    per_core_chunks: Sequence[Iterable[np.ndarray]],
    weights: List[float],
    tag_core_id: bool,
    chunk_addresses: int,
) -> Iterator[np.ndarray]:
    """Generator behind :func:`iter_interleave_weighted` (inputs validated)."""
    num_cores = len(per_core_chunks)
    cursors = [_CoreCursor(chunks) for chunks in per_core_chunks]
    credits = [0.0] * num_cores
    merged = np.empty(chunk_addresses, dtype=np.uint64)
    core_ids = np.empty(chunk_addresses, dtype=np.uint64)
    filled = 0
    while True:
        # Weighted round-robin: every unfinished core earns its weight in
        # credit, the richest core emits and pays the active weight total.
        best_core = -1
        active_weight = 0.0
        for core, cursor in enumerate(cursors):
            if not cursor.peek():
                continue
            credits[core] += weights[core]
            active_weight += weights[core]
            if best_core < 0 or credits[core] > credits[best_core]:
                best_core = core
        if best_core < 0:
            break
        merged[filled] = cursors[best_core].pop()
        core_ids[filled] = best_core
        credits[best_core] -= active_weight
        filled += 1
        if filled == chunk_addresses:
            yield _finish_chunk(merged, core_ids, filled, tag_core_id)
            filled = 0
    if filled:
        yield _finish_chunk(merged, core_ids, filled, tag_core_id)


def _finish_chunk(
    merged: np.ndarray, core_ids: np.ndarray, filled: int, tag_core_id: bool
) -> np.ndarray:
    """Copy one filled output buffer into an owned, optionally tagged chunk."""
    chunk = np.array(merged[:filled], dtype=np.uint64, copy=True)
    if tag_core_id:
        return tag_addresses(chunk, core_ids[:filled].tolist())
    return chunk


def iter_interleave_round_robin(
    per_core_chunks: Sequence[Iterable[np.ndarray]],
    tag_core_id: bool = True,
    chunk_addresses: int = DEFAULT_CHUNK_ADDRESSES,
) -> Iterator[np.ndarray]:
    """Streaming round-robin merge (equal-weight :func:`iter_interleave_weighted`)."""
    return iter_interleave_weighted(
        per_core_chunks,
        weights=[1.0] * len(per_core_chunks),
        tag_core_id=tag_core_id,
        chunk_addresses=chunk_addresses,
    )


def interleave_round_robin(per_core_traces: Sequence, tag_core_id: bool = True) -> np.ndarray:
    """Merge per-core block-address traces one reference per core per turn.

    Cores that run out of addresses simply drop out of the rotation; the
    merged trace always contains every input address exactly once.

    Args:
        per_core_traces: One block-address sequence per core.
        tag_core_id: Store the core id in the spare high bits (default), so
            :func:`split_by_core` can recover the per-core streams.
    """
    arrays = _validate_cores(per_core_traces)
    return interleave_weighted(arrays, weights=[1.0] * len(arrays), tag_core_id=tag_core_id)


def interleave_weighted(
    per_core_traces: Sequence,
    weights: Sequence[float],
    tag_core_id: bool = True,
) -> np.ndarray:
    """Merge whole per-core traces with per-core injection rates.

    In-memory wrapper over the :func:`iter_interleave_weighted` chunk
    merger (each trace is fed as a single chunk), so the two paths produce
    identical output by construction.
    """
    arrays = _validate_cores(per_core_traces)
    weights = _validate_weights(len(arrays), weights)
    chunks = list(
        iter_interleave_weighted([[array] for array in arrays], weights, tag_core_id=tag_core_id)
    )
    if not chunks:
        return np.empty(0, dtype=np.uint64)
    if len(chunks) == 1:
        return chunks[0]
    return np.concatenate(chunks)


def split_by_core(merged_trace, num_cores: int) -> List[np.ndarray]:
    """Split a core-tagged merged trace back into per-core address arrays."""
    if num_cores < 1 or num_cores > MAX_CORES:
        raise ConfigurationError(f"num_cores must be in 1..{MAX_CORES}")
    addresses, core_ids = untag_addresses(merged_trace)
    if addresses.size and int(core_ids.max()) >= num_cores:
        raise TraceFormatError(
            f"merged trace contains core id {int(core_ids.max())} >= num_cores {num_cores}"
        )
    return [addresses[core_ids == core] for core in range(num_cores)]


def merge_traces(per_core_traces: Sequence[AddressTrace], name: str = "merged") -> AddressTrace:
    """Round-robin merge returning an :class:`AddressTrace` (tagged)."""
    merged = interleave_round_robin(per_core_traces, tag_core_id=True)
    return AddressTrace(merged, name=name)
