"""Multi-core trace composition.

The paper motivates compact cache-filtered traces with multicore
simulation: "combined with some other simulation tools ..., cache-filtered
address traces can be used to simulate a multicore memory hierarchy,
including main memory" (Section 2).  This module provides the small
substrate needed for that use: interleaving several per-core filtered
traces into a single shared-hierarchy reference stream, and splitting a
merged stream back into its per-core components.

Two interleavings are provided:

* **round-robin** — one address from each core in turn (the simplest model
  of cores progressing at the same rate);
* **rate-weighted** — cores are interleaved proportionally to a weight, so
  a core with weight 2 injects twice as many references per unit time as a
  core with weight 1 (a crude model of heterogeneous miss rates).

Core identity is preserved by tagging each address with the core id in the
spare high bits of the block address (the same spare bits the paper
suggests for demand/write-back tags), so a merged trace remains a plain
sequence of 64-bit values that ATC can compress unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError
from repro.traces.records import TAG_BITS, tag_addresses, untag_addresses
from repro.traces.trace import AddressTrace, as_address_array

__all__ = [
    "MAX_CORES",
    "interleave_round_robin",
    "interleave_weighted",
    "split_by_core",
    "merge_traces",
]

#: Core ids must fit in the spare tag bits of a block address.
MAX_CORES = 1 << TAG_BITS


def _validate_cores(per_core_traces: Sequence) -> List[np.ndarray]:
    if not per_core_traces:
        raise ConfigurationError("at least one per-core trace is required")
    if len(per_core_traces) > MAX_CORES:
        raise ConfigurationError(f"at most {MAX_CORES} cores are supported")
    arrays = []
    for trace in per_core_traces:
        if isinstance(trace, AddressTrace):
            arrays.append(trace.addresses)
        else:
            arrays.append(as_address_array(trace))
    return arrays


def interleave_round_robin(per_core_traces: Sequence, tag_core_id: bool = True) -> np.ndarray:
    """Merge per-core block-address traces one reference per core per turn.

    Cores that run out of addresses simply drop out of the rotation; the
    merged trace always contains every input address exactly once.

    Args:
        per_core_traces: One block-address sequence per core.
        tag_core_id: Store the core id in the spare high bits (default), so
            :func:`split_by_core` can recover the per-core streams.
    """
    arrays = _validate_cores(per_core_traces)
    return interleave_weighted(arrays, weights=[1.0] * len(arrays), tag_core_id=tag_core_id)


def interleave_weighted(
    per_core_traces: Sequence,
    weights: Sequence[float],
    tag_core_id: bool = True,
) -> np.ndarray:
    """Merge per-core traces with per-core injection rates.

    A deterministic deficit-counter schedule is used: at every step the core
    with the largest accumulated credit (and remaining addresses) emits its
    next address.  With equal weights this degenerates to round-robin.
    """
    arrays = _validate_cores(per_core_traces)
    if len(weights) != len(arrays):
        raise ConfigurationError("one weight per core is required")
    if any(weight <= 0 for weight in weights):
        raise ConfigurationError("weights must be positive")
    positions = [0] * len(arrays)
    credits = [0.0] * len(arrays)
    total = sum(int(array.size) for array in arrays)
    merged = np.empty(total, dtype=np.uint64)
    core_ids = np.empty(total, dtype=np.uint64)
    for slot in range(total):
        # Weighted round-robin: every unfinished core earns its weight in
        # credit, the richest core emits and pays the active weight total.
        best_core = -1
        active_weight = 0.0
        for core, array in enumerate(arrays):
            if positions[core] >= array.size:
                continue
            credits[core] += weights[core]
            active_weight += weights[core]
            if best_core < 0 or credits[core] > credits[best_core]:
                best_core = core
        merged[slot] = arrays[best_core][positions[best_core]]
        core_ids[slot] = best_core
        positions[best_core] += 1
        credits[best_core] -= active_weight
    if tag_core_id:
        return tag_addresses(merged, core_ids.tolist())
    return merged


def split_by_core(merged_trace, num_cores: int) -> List[np.ndarray]:
    """Split a core-tagged merged trace back into per-core address arrays."""
    if num_cores < 1 or num_cores > MAX_CORES:
        raise ConfigurationError(f"num_cores must be in 1..{MAX_CORES}")
    addresses, core_ids = untag_addresses(merged_trace)
    if addresses.size and int(core_ids.max()) >= num_cores:
        raise TraceFormatError(
            f"merged trace contains core id {int(core_ids.max())} >= num_cores {num_cores}"
        )
    return [addresses[core_ids == core] for core in range(num_cores)]


def merge_traces(per_core_traces: Sequence[AddressTrace], name: str = "merged") -> AddressTrace:
    """Round-robin merge returning an :class:`AddressTrace` (tagged)."""
    merged = interleave_round_robin(per_core_traces, tag_core_id=True)
    return AddressTrace(merged, name=name)
