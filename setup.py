"""Setup shim for environments without PEP-517 editable-install support."""

from setuptools import setup

setup()
